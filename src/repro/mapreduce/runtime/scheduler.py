"""Bounded multiprocess task scheduler: retries, backoff, speculation,
attempt deadlines, heartbeat monitoring, and checkpoint adoption.

The scheduler executes one *wave* of independent tasks (all maps, then
all reduces -- the shuffle barrier between them is the job DAG) on a
bounded pool of worker processes.  It owns the whole robustness story:

* **Retry with backoff** -- an attempt that dies (no result file) or
  returns an error is re-queued with exponential backoff, up to
  ``max_retries`` extra attempts; the job fails only when a task
  exhausts its budget with no rival attempt still in flight.
* **Speculative execution** -- once enough tasks have finished to
  estimate a typical duration, a running attempt that exceeds
  ``straggler_factor`` x the median is duplicated.  First finisher
  wins; the loser is terminated and its output directory discarded.
* **Attempt deadlines** -- ``task_timeout`` is a hard per-attempt wall
  clock: an attempt that exceeds it is killed and the kill counts as a
  retryable failure.  This is what guarantees progress when speculation
  is disabled: a hung worker used to stall ``run_wave`` forever.
* **Heartbeat staleness** -- workers touch a heartbeat file on a
  cadence; with ``heartbeat_timeout`` set, an attempt whose heartbeat
  mtime goes stale is killed even though ``is_alive()`` still reports
  true (a stopped or wedged process, not a dead one).
* **Wave deadline** -- ``wave_deadline`` bounds the whole wave; on
  breach the wave fails with a :class:`WaveDeadlineError` carrying a
  per-task diagnosis from the :class:`~repro.mapreduce.runtime.trace.
  RuntimeTrace` (which tasks were stuck, and what they were last doing).
* **Corrupt-segment repair** -- a reduce attempt failing a segment
  checksum reports the offending path; the caller-supplied ``repair``
  hook re-generates that map output in place and the reduce retries
  (Hadoop's fetch-failure -> re-execute-the-mapper protocol).
* **Record skipping** -- when a job carries a
  :class:`~repro.mapreduce.job.SkipPolicy` and an attempt fails with a
  skip-eligible error (user-code or record-local corruption), every
  later attempt of that task runs in record-level skipping mode (see
  :mod:`~repro.mapreduce.runtime.skipping`): poison records are
  bisected out into quarantine and the task completes over the rest.
* **Checkpoint adoption** -- ``run_wave(..., precomputed=...)`` seeds
  the wave with results recovered from a job manifest (see
  :mod:`~repro.mapreduce.runtime.recovery`); adopted tasks are recorded
  in the trace and never scheduled.

Tasks are deterministic functions of the job configuration, so *which*
attempt wins never changes the result -- the property the equivalence
tests pin down against the serial runner.
"""

from __future__ import annotations

import json
import multiprocessing.connection
import os
import shutil
import statistics
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, replace as dc_replace
from typing import Any, Callable, Mapping, Sequence

from repro.mapreduce.metrics import C
from repro.mapreduce.runtime.fault import Fault, FaultInjector
from repro.mapreduce.runtime.hosts import HostHealthMonitor
from repro.mapreduce.runtime.pipeline import STARVED_NAME
from repro.mapreduce.runtime.pool import PoolSaturatedError, WorkerPool
from repro.mapreduce.runtime.trace import RuntimeTrace
from repro.mapreduce.runtime.worker import (
    HEARTBEAT_NAME,
    load_result,
    worker_entry,
)
from repro.util.backoff import backoff_delay

__all__ = ["TaskSpec", "TaskFailedError", "WaveDeadlineError",
           "JobCancelledError", "TaskScheduler"]


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable task: identity, kind, and its input payload."""

    task_id: str
    kind: str   # "map" or "reduce"
    payload: Any  # InputSplit for maps, (partition, segments) for reduces


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget."""

    def __init__(self, task_id: str, attempts: int, detail: str) -> None:
        super().__init__(
            f"task {task_id} failed after {attempts} attempt(s): {detail}")
        self.task_id = task_id
        self.attempts = attempts
        self.detail = detail


class WaveDeadlineError(TaskFailedError):
    """The whole wave overran ``wave_deadline``.

    ``detail`` carries :meth:`RuntimeTrace.diagnose` output for every
    unfinished task, so the failure names the stuck work instead of
    just reporting that time ran out.
    """

    def __init__(self, unfinished: Sequence[str], deadline: float,
                 diagnosis: str) -> None:
        self.unfinished = list(unfinished)
        detail = (f"wave exceeded deadline of {deadline:.3f}s with "
                  f"{len(self.unfinished)} unfinished task(s):\n{diagnosis}")
        super().__init__(self.unfinished[0] if self.unfinished else "<none>",
                         0, detail)


class JobCancelledError(RuntimeError):
    """The wave was interrupted through its cancel event.

    Raised by the scheduler's poll loop when the runner's
    ``cancel_event`` is set -- a SIGTERM/SIGINT on a standalone run, or
    an explicit ``repro cancel`` / daemon shutdown on a service job.
    Every in-flight worker has been killed (the ``finally`` sweep) and,
    on a recovery-enabled run, the manifest holds every task completed
    before the interrupt -- a later ``resume=True`` run picks up from
    there instead of from scratch.
    """

    def __init__(self, unfinished: Sequence[str],
                 reason: str = "cancelled") -> None:
        self.unfinished = list(unfinished)
        self.reason = reason
        super().__init__(
            f"job {reason} with {len(self.unfinished)} unfinished "
            f"task(s): {', '.join(self.unfinished[:8])}"
            f"{'...' if len(self.unfinished) > 8 else ''}")


class _Attempt:
    """Book-keeping for one in-flight worker process."""

    __slots__ = ("spec", "number", "process", "dir", "result_path",
                 "heartbeat_path", "started", "speculative", "host")

    def __init__(self, spec: TaskSpec, number: int, process, attempt_dir: str,
                 result_path: str, speculative: bool,
                 host: str | None = None) -> None:
        self.spec = spec
        self.number = number
        self.process = process
        self.dir = attempt_dir
        self.result_path = result_path
        self.heartbeat_path = os.path.join(attempt_dir, HEARTBEAT_NAME)
        self.started = time.monotonic()
        self.speculative = speculative
        self.host = host


def _kill_process(process, grace: float = 0.5) -> None:
    """Terminate a worker, escalating to SIGKILL for stubborn or
    stopped processes (SIGTERM never reaches a SIGSTOPped worker)."""
    process.terminate()
    process.join(timeout=grace)
    if process.is_alive():
        process.kill()
        process.join(timeout=5)


class TaskScheduler:
    """Run waves of tasks on a bounded pool of worker processes.

    Parameters
    ----------
    max_workers:
        Concurrent worker processes (default: CPU count).
    max_retries:
        Extra attempts a task may use after its first failure.
    retry_backoff / retry_backoff_max:
        Base delay before a retry launches; doubles per failure, capped
        at ``retry_backoff_max``, with deterministic per-task jitter
        (:func:`~repro.util.backoff.backoff_delay`).
    fetch_failure_threshold / max_map_reexecs:
        A reduce attempt that cannot fetch a map's segments charges that
        map one *strike* (without spending the reduce's retry budget).
        At ``fetch_failure_threshold`` strikes the scheduler invokes the
        caller's ``reexec`` hook to re-execute the completed map and
        re-points waiting reducers at the fresh segments; one map may be
        re-executed at most ``max_map_reexecs`` times before the wave
        fails (a permanently unfetchable segment must not loop forever).
    shuffle:
        Optional :class:`~repro.mapreduce.runtime.shuffle.ShuffleConfig`
        forwarded to reduce workers (transport choice + fetch knobs).
    speculation / straggler_factor / min_straggler_seconds /
    speculation_min_completed:
        A non-speculative attempt running longer than
        ``max(straggler_factor * median(done), min_straggler_seconds)``
        is duplicated, once at least ``speculation_min_completed`` tasks
        have finished.
    task_timeout:
        Hard per-attempt deadline in seconds; ``None`` disables.  A
        breaching attempt is killed and the kill is a retryable failure.
    heartbeat_interval:
        Cadence (seconds) at which workers touch their heartbeat file.
    heartbeat_timeout:
        Kill an attempt whose heartbeat file mtime is older than this
        many seconds (and whose age exceeds it); ``None`` disables.
        Must be comfortably larger than ``heartbeat_interval``.
    wave_deadline:
        Overall wall-clock budget for one ``run_wave`` call; ``None``
        disables.  Breach raises :class:`WaveDeadlineError`.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap, no pickling of job/dataset on launch).  Only
        consulted when the scheduler builds its own private pool --
        a borrowed ``pool`` brings its own context.
    pool / tenant:
        The :class:`~repro.mapreduce.runtime.pool.WorkerPool` worker
        slots are leased from, and the tenant the lease is charged to.
        Without a pool the scheduler builds a private one sized
        ``max_workers`` -- the pre-service ownership model, byte-for-
        byte.  With a shared pool (the job service), every launch
        also needs a free global slot *and* tenant-quota headroom, so
        concurrent jobs split the machine instead of over-forking it.
    cancel_event:
        Optional :class:`threading.Event`; when set, the poll loop
        stops the wave with :class:`JobCancelledError` after killing
        every in-flight worker.  The runner wires SIGTERM/SIGINT and
        service-side cancellation to this.
    fault_injector:
        Optional :class:`FaultInjector`, forwarded to workers.
    hosts:
        Optional :class:`~repro.mapreduce.runtime.hosts.
        HostHealthMonitor`.  When present, every attempt is *placed* on
        a simulated host (skipping blacklisted and dead ones), attempt
        outcomes / heartbeat breaches / fetch strikes feed the host
        state machine, and a host declared dead mid-wave has its
        attempts killed-and-requeued and its completed maps bulk
        re-executed through the ``reexec`` hook.  Planned ``disk_fault``
        injections against a task's home host ride into its workers.
    trace:
        The :class:`RuntimeTrace` events are recorded into.
    """

    def __init__(
        self,
        *,
        max_workers: int | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 2.0,
        fetch_failure_threshold: int = 2,
        max_map_reexecs: int = 2,
        shuffle: Any = None,
        speculation: bool = True,
        straggler_factor: float = 3.0,
        min_straggler_seconds: float = 1.0,
        speculation_min_completed: int = 2,
        task_timeout: float | None = None,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float | None = None,
        wave_deadline: float | None = None,
        poll_interval: float = 0.005,
        start_method: str | None = None,
        pool: WorkerPool | None = None,
        tenant: str = "default",
        cancel_event: threading.Event | None = None,
        fault_injector: FaultInjector | None = None,
        hosts: HostHealthMonitor | None = None,
        trace: RuntimeTrace | None = None,
        worker_rlimit_bytes: int | None = None,
    ) -> None:
        if max_workers is None and pool is not None:
            max_workers = pool.max_workers
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        if retry_backoff_max < 0:
            raise ValueError(
                f"retry_backoff_max must be >= 0, got {retry_backoff_max}")
        if fetch_failure_threshold < 1:
            raise ValueError(
                f"fetch_failure_threshold must be >= 1, "
                f"got {fetch_failure_threshold}")
        if max_map_reexecs < 0:
            raise ValueError(
                f"max_map_reexecs must be >= 0, got {max_map_reexecs}")
        if straggler_factor <= 1.0:
            raise ValueError(
                f"straggler_factor must be > 1, got {straggler_factor}")
        if speculation_min_completed < 1:
            raise ValueError("speculation_min_completed must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}")
        if heartbeat_timeout is not None:
            if heartbeat_timeout <= heartbeat_interval:
                raise ValueError(
                    f"heartbeat_timeout ({heartbeat_timeout}) must exceed "
                    f"heartbeat_interval ({heartbeat_interval})")
        if wave_deadline is not None and wave_deadline <= 0:
            raise ValueError(f"wave_deadline must be > 0, got {wave_deadline}")
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self.fetch_failure_threshold = fetch_failure_threshold
        self.max_map_reexecs = max_map_reexecs
        self.shuffle = shuffle
        self.speculation = speculation
        self.straggler_factor = straggler_factor
        self.min_straggler_seconds = min_straggler_seconds
        self.speculation_min_completed = speculation_min_completed
        self.task_timeout = task_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.wave_deadline = wave_deadline
        self.poll_interval = poll_interval
        self.fault_injector = fault_injector
        self.hosts = hosts
        self.worker_rlimit_bytes = worker_rlimit_bytes
        #: ledger telemetry aggregated across waves -- consumed by the
        #: runner for ``JobResult.memory_stats`` and the MEMORY_* counters
        self.memory_tally: dict[str, Any] = {
            "oom_events": 0, "degraded_attempts": 0, "peak_bytes": 0,
            "backpressure_waits": 0, "used_budget": False}
        #: planned disk faults by home host, applied inside workers
        self._disk_faults: dict[str, Fault] = {}
        if fault_injector is not None:
            self._disk_faults = {
                h: f for h, f in fault_injector.host_plan().items()
                if f.mode == "disk_fault"}
        self.trace = trace if trace is not None else RuntimeTrace()
        if pool is None:
            # Standalone mode: a private pool sized to this scheduler,
            # exactly the pre-service ownership model.
            pool = WorkerPool(max_workers=self.max_workers,
                              start_method=start_method)
        self.pool = pool
        self.tenant = tenant
        self.cancel_event = cancel_event
        self._lease = pool.lease(tenant)

    # ------------------------------------------------------------------ wave

    def run_wave(
        self,
        specs: Sequence[TaskSpec],
        job: Any,
        dataset: Any,
        wave_dir: str,
        repair: Callable[[str], None] | None = None,
        precomputed: Mapping[str, Any] | None = None,
        on_complete: Callable[[TaskSpec, int, str, str, Any], None] | None = None,
        keep_result_files: bool = False,
        reexec: Callable[[str], Mapping[str, Any]] | None = None,
        pipeline: bool = False,
    ) -> dict[str, Any]:
        """Run every task in ``specs`` to completion; returns results by id.

        Raises :class:`TaskFailedError` when any task exhausts its retry
        budget, or :class:`WaveDeadlineError` on ``wave_deadline``
        breach.  ``repair`` is invoked with the corrupt segment path
        when an attempt fails integrity verification, before that
        task's retry is queued.

        ``precomputed`` maps task ids to already-recovered results
        (checkpoint adoption): those tasks are marked ``adopted`` in the
        trace and never scheduled.  ``on_complete(spec, attempt_number,
        attempt_dir, result_path, value)`` fires once per freshly won
        task -- the manifest-recording hook.  With ``keep_result_files``
        the winning attempt's pickled result survives on disk so a
        later resume can reload it.

        ``reexec`` is the map re-execution hook for reduce waves: called
        with a map task id whose segments have accumulated
        ``fetch_failure_threshold`` fetch-failure strikes, it must
        re-run that completed map and return ``{reduce_id: new_payload}``
        for every reduce task in this wave.  The scheduler re-points
        queued reduces at the new payloads, kills and requeues running
        attempts that were reading the invalidated segments, and resets
        the map's strike count.

        ``pipeline`` marks a *combined* wave (maps and reduces admitted
        together; reduce payloads carry a :class:`~repro.mapreduce.
        runtime.pipeline.PipelinePlan` instead of resolved refs).  It
        changes two policies: median-based speculation considers only
        map attempts (a pipelined reducer's duration is mostly waiting
        on late maps, not work), and reducers that report starvation
        (the ``_starved`` marker in their attempt dir naming at most
        ``shuffle.starvation_threshold`` missing producers) trigger
        immediate speculation of those straggling maps -- progress-based
        rather than deadline-based straggler detection.
        """
        specs = list(specs)
        by_id = {s.task_id: s for s in specs}
        if len(by_id) != len(specs):
            raise ValueError("duplicate task ids in wave")
        os.makedirs(wave_dir, exist_ok=True)

        trace = self.trace
        results: dict[str, Any] = {}
        if precomputed:
            unknown = sorted(set(precomputed) - set(by_id))
            if unknown:
                raise ValueError(
                    f"precomputed results for tasks not in wave: {unknown}")
            for task_id, value in precomputed.items():
                results[task_id] = value
                trace.record(task_id, 0, by_id[task_id].kind, "adopted",
                             "validated checkpoint from manifest")
        #: (spec, not-before monotonic time), FIFO with backoff gates
        pending: list[tuple[TaskSpec, float]] = [
            (s, 0.0) for s in specs if s.task_id not in results]
        running: list[_Attempt] = []
        failures: dict[str, int] = defaultdict(int)
        #: fetch-failure strikes per *map* task (reduce waves only);
        #: cleared when the map is re-executed
        fetch_strikes: dict[str, int] = defaultdict(int)
        #: how many times each map has been re-executed this wave
        map_reexecs: dict[str, int] = defaultdict(int)
        #: fetch-failure requeues per reduce -- paces the retry backoff
        #: without charging the reduce's ``max_retries`` budget
        fetch_requeues: dict[str, int] = defaultdict(int)
        #: OOM deaths per task: the degrade level.  Each death halves
        #: the task's sort buffer and fetch window on the next launch
        #: (the serial runner's ``_memory_setup`` formula), uncharged
        #: against ``max_retries`` but bounded by ``max_memory_retries``.
        oom_requeues: dict[str, int] = defaultdict(int)
        #: tasks whose next attempts run in record-skipping mode; sticky
        #: for the rest of the wave once a skip-eligible failure is seen
        skip_tasks: set[str] = set()
        next_attempt: dict[str, int] = defaultdict(int)
        #: completed-attempt durations by task kind: a combined
        #: (pipelined) wave must not let long wait-bound reduce attempts
        #: skew the map straggler median, or vice versa
        durations: dict[str, list[float]] = {"map": [], "reduce": []}
        wave_started = time.monotonic()

        for s, _ in pending:
            trace.record(s.task_id, 0, s.kind, "queued")

        def launch(spec: TaskSpec, speculative: bool) -> bool:
            # Always launch the *current* spec for this task id: a map
            # re-execution may have re-pointed the payload since this
            # spec object was queued.
            spec = by_id[spec.task_id]
            number = next_attempt[spec.task_id]
            attempt_dir = os.path.join(wave_dir, f"{spec.task_id}.{number}")
            os.makedirs(attempt_dir, exist_ok=True)
            result_path = os.path.join(attempt_dir, "_result.pkl")
            fault = (self.fault_injector.fault_for(spec.task_id, number)
                     if self.fault_injector is not None else None)
            fetch_faults = (
                self.fault_injector.fetch_plan_for(spec.task_id)
                if self.fault_injector is not None and spec.kind == "reduce"
                else None) or None
            skip_mode = spec.task_id in skip_tasks
            host = disk_fault = None
            if self.hosts is not None:
                host = self.hosts.place(spec.task_id)
                if self._disk_faults:
                    # Disk faults follow the task's *home* host (the
                    # serial runner has no placement, so parity demands
                    # the stable hash decide who fails over).
                    disk_fault = self._disk_faults.get(
                        self.hosts.host_for(spec.task_id))
            # Degrade-on-retry: after ``degrade`` OOM deaths this task
            # launches with a deterministically halved sort buffer and
            # fetch byte window -- the serial runner's exact formula, so
            # injected OOM runs stay counter-identical across runners.
            degrade = oom_requeues[spec.task_id]
            eff_job, eff_shuffle = job, self.shuffle
            if degrade:
                eff_job = dc_replace(job, sort_buffer_bytes=max(
                    1024, job.sort_buffer_bytes >> degrade))
                mib = (getattr(eff_shuffle, "max_inflight_bytes", None)
                       if eff_shuffle is not None else None)
                if mib is not None:
                    eff_shuffle = dc_replace(
                        eff_shuffle, max_inflight_bytes=max(1, mib >> degrade))
            try:
                process = self._lease.spawn(
                    worker_entry,
                    (spec.task_id, spec.kind, number, attempt_dir,
                     result_path, eff_job,
                     dataset if spec.kind == "map" else None,
                     spec.payload, fault, self.heartbeat_interval,
                     skip_mode, eff_shuffle, fetch_faults,
                     host, disk_fault, self.worker_rlimit_bytes),
                )
            except PoolSaturatedError:
                # Lost the race for the last shared slot to a concurrent
                # job between the availability check and the spawn; the
                # attempt number stays unspent and the caller requeues.
                shutil.rmtree(attempt_dir, ignore_errors=True)
                return False
            next_attempt[spec.task_id] += 1
            running.append(_Attempt(spec, number, process, attempt_dir,
                                    result_path, speculative, host))
            if disk_fault is not None:
                trace.record(spec.task_id, number, spec.kind,
                             "disk_failover",
                             f"workdir on {host} raises {disk_fault.op}; "
                             f"spilling to spare volume")
            if speculative:
                trace.record(spec.task_id, number, spec.kind, "speculated")
            if skip_mode:
                trace.record(spec.task_id, number, spec.kind, "skipping",
                             "record-level skipping after eligible failure")
            trace.record(spec.task_id, number, spec.kind, "started")
            return True

        def retire(attempt: _Attempt) -> None:
            """Drop a reaped/killed attempt and return its pool slot."""
            running.remove(attempt)
            self._lease.release()

        def kill_rivals(task_id: str, winner: _Attempt) -> None:
            for rival in [a for a in running
                          if a.spec.task_id == task_id and a is not winner]:
                _kill_process(rival.process)
                retire(rival)
                trace.record(task_id, rival.number, rival.spec.kind,
                             "killed", "rival attempt won")
                trace.record(task_id, rival.number, rival.spec.kind,
                             "discarded")
                shutil.rmtree(rival.dir, ignore_errors=True)

        def record_failure(attempt: _Attempt, detail: str,
                           corrupt_path: str | None = None,
                           skip_eligible: bool = False) -> None:
            """Common failure path: cleanup, repair, requeue or raise."""
            spec = attempt.spec
            task_id = spec.task_id
            trace.record(task_id, attempt.number, spec.kind, "failed", detail)
            shutil.rmtree(attempt.dir, ignore_errors=True)
            if self.hosts is not None and attempt.host is not None:
                self.hosts.record_task_failure(attempt.host, detail)
            if corrupt_path is not None and repair is not None:
                repair(corrupt_path)
            if skip_eligible and getattr(job, "skipping", None) is not None:
                skip_tasks.add(task_id)
            failures[task_id] += 1
            rival_running = any(a.spec.task_id == task_id for a in running)
            if failures[task_id] > self.max_retries:
                if rival_running:
                    return  # a speculative rival may still win
                raise TaskFailedError(task_id, failures[task_id] + 1, detail)
            if rival_running:
                return  # the rival attempt *is* the retry
            delay = backoff_delay(self.retry_backoff, failures[task_id],
                                  self.retry_backoff_max, key=task_id)
            pending.append((by_id[task_id], time.monotonic() + delay))
            trace.record(task_id, attempt.number, spec.kind, "retried",
                         f"backoff {delay:.3f}s")

        def reexec_map(map_id: str, detail: str) -> None:
            """Re-execute a completed map and re-point its consumers."""
            map_reexecs[map_id] += 1
            if map_reexecs[map_id] > self.max_map_reexecs:
                raise TaskFailedError(
                    map_id, map_reexecs[map_id],
                    f"map re-executed {self.max_map_reexecs} time(s) and "
                    f"its segments remain unfetchable: {detail}")
            fetch_strikes[map_id] = 0
            new_payloads = reexec(map_id)
            trace.record(map_id, map_reexecs[map_id], "map", "map_reexec",
                         f"fetch-failure threshold "
                         f"({self.fetch_failure_threshold}) reached: {detail}")
            for reduce_id, payload in new_payloads.items():
                if reduce_id not in by_id or reduce_id in results:
                    continue
                new_spec = TaskSpec(reduce_id, "reduce", payload)
                by_id[reduce_id] = new_spec
                for i, (queued_spec, not_before) in enumerate(pending):
                    if queued_spec.task_id == reduce_id:
                        pending[i] = (new_spec, not_before)
                # Running attempts are reading segments that no longer
                # exist: kill them and requeue the task immediately.
                stale = [a for a in running if a.spec.task_id == reduce_id]
                for a in stale:
                    _kill_process(a.process)
                    retire(a)
                    trace.record(reduce_id, a.number, "reduce", "killed",
                                 f"segments of {map_id} invalidated by "
                                 f"re-execution")
                    shutil.rmtree(a.dir, ignore_errors=True)
                if stale and not any(s.task_id == reduce_id
                                     for s, _ in pending):
                    pending.append((new_spec, 0.0))

        def handle_fetch_failure(attempt: _Attempt, map_id: str,
                                 detail: str) -> None:
            """A reduce exhausted its fetch retries against one map.

            The failure is charged to the *link* (a strike against the
            producing map), not to the reduce's retry budget: the reduce
            did nothing wrong and must survive as many requeues as map
            re-execution needs.  Termination is still guaranteed --
            strikes accumulate to ``fetch_failure_threshold``, and
            ``max_map_reexecs`` bounds how often one map may be re-run
            before the wave fails.
            """
            spec = attempt.spec
            task_id = spec.task_id
            trace.record(task_id, attempt.number, spec.kind, "failed", detail)
            trace.record(task_id, attempt.number, spec.kind, "fetch_failure",
                         f"{map_id}: {detail}")
            shutil.rmtree(attempt.dir, ignore_errors=True)
            if self.hosts is not None:
                # The strike lands on the host *serving* the unfetchable
                # segments -- evidence toward DEAD only if that host has
                # also gone silent (partition-vs-death rule).
                self.hosts.record_fetch_strike(self.hosts.host_for(map_id))
            fetch_strikes[map_id] += 1
            if fetch_strikes[map_id] >= self.fetch_failure_threshold:
                if reexec is None:
                    raise TaskFailedError(
                        task_id, fetch_requeues[task_id] + 1,
                        f"{detail} (no re-execution hook installed)")
                reexec_map(map_id, detail)
            if any(a.spec.task_id == task_id for a in running) \
                    or any(s.task_id == task_id for s, _ in pending):
                return  # a rival or a reexec requeue already covers it
            fetch_requeues[task_id] += 1
            delay = backoff_delay(self.retry_backoff, fetch_requeues[task_id],
                                  self.retry_backoff_max,
                                  key=f"{task_id}:fetch")
            pending.append((by_id[task_id], time.monotonic() + delay))
            trace.record(task_id, attempt.number, spec.kind, "retried",
                         f"fetch failure, backoff {delay:.3f}s "
                         f"(retry budget uncharged)")

        def handle_oom(attempt: _Attempt, detail: str) -> None:
            """An attempt died out of memory (injected, budget overrun,
            simulated OOM kill, or a real rlimit ``MemoryError``).

            Requeued *uncharged* against ``max_retries`` -- the memory
            ladder has its own bound (``max_memory_retries``) -- with
            the degrade level bumped so the next launch runs on halved
            memory knobs.  Hosts are not charged either: the task's
            footprint, not the host's disks, is at fault.
            """
            spec = attempt.spec
            task_id = spec.task_id
            trace.record(task_id, attempt.number, spec.kind, "failed", detail)
            shutil.rmtree(attempt.dir, ignore_errors=True)
            limit = (getattr(self.shuffle, "max_memory_retries", 2)
                     if self.shuffle is not None else 2)
            oom_requeues[task_id] += 1
            if oom_requeues[task_id] > limit:
                if any(a.spec.task_id == task_id for a in running):
                    return  # a speculative rival may still win
                raise TaskFailedError(
                    task_id, oom_requeues[task_id],
                    f"{detail} (exhausted {limit} memory retries)")
            # Tallied only for deaths that earn a degraded retry -- the
            # exhausting death raises untallied, exactly like the serial
            # ladder, so the counters match whenever a job completes.
            self.memory_tally["oom_events"] += 1
            self.memory_tally["degraded_attempts"] += 1
            trace.record(task_id, attempt.number, spec.kind, "oom_degraded",
                         f"degrade level {oom_requeues[task_id]}: sort "
                         f"buffer and fetch window halved")
            if any(a.spec.task_id == task_id for a in running) \
                    or any(s.task_id == task_id for s, _ in pending):
                return  # a rival attempt or queued retry already covers it
            delay = backoff_delay(self.retry_backoff, oom_requeues[task_id],
                                  self.retry_backoff_max,
                                  key=f"{task_id}:oom")
            pending.append((by_id[task_id], time.monotonic() + delay))
            trace.record(task_id, attempt.number, spec.kind, "retried",
                         f"oom, backoff {delay:.3f}s "
                         f"(retry budget uncharged)")

        def handle_exit(attempt: _Attempt) -> None:
            spec = attempt.spec
            task_id = spec.task_id
            if task_id in results:
                # A rival attempt already won while this one was finishing.
                trace.record(task_id, attempt.number, spec.kind,
                             "discarded", "lost to rival attempt")
                shutil.rmtree(attempt.dir, ignore_errors=True)
                return
            result = load_result(attempt.result_path)
            if result is not None and result["status"] == "ok":
                results[task_id] = result["value"]
                durations[spec.kind].append(time.monotonic() - attempt.started)
                trace.record(task_id, attempt.number, spec.kind, "finished")
                if self.hosts is not None and attempt.host is not None:
                    # A completed attempt is both liveness evidence and a
                    # clean attempt toward probation reinstatement.
                    self.hosts.record_heartbeat(attempt.host)
                    self.hosts.record_task_success(attempt.host)
                counters = getattr(result["value"], "counters", None)
                skipped = (counters.get(C.RECORDS_SKIPPED)
                           if counters is not None else 0)
                if skipped:
                    trace.record(
                        task_id, attempt.number, spec.kind, "quarantined",
                        f"{skipped} record(s) skipped into quarantine")
                mem = result.get("memory")
                if mem:
                    tally = self.memory_tally
                    tally["used_budget"] = True
                    tally["peak_bytes"] = max(tally["peak_bytes"],
                                              mem.get("peak", 0))
                    tally["backpressure_waits"] += mem.get(
                        "backpressure_waits", 0)
                    trace.record(
                        task_id, attempt.number, spec.kind, "memory_peak",
                        f"{mem.get('peak', 0)}/{mem.get('capacity')}")
                if on_complete is not None:
                    on_complete(spec, attempt.number, attempt.dir,
                                attempt.result_path, result["value"])
                if not keep_result_files:
                    try:
                        os.unlink(attempt.result_path)
                    except OSError:  # pragma: no cover - already gone
                        pass
                kill_rivals(task_id, attempt)
                return
            # Failure: worker died without a result, or reported an error.
            if result is None:
                detail = (f"worker exited with code "
                          f"{attempt.process.exitcode} and no result")
                corrupt_path = None
                skip_eligible = False
            else:
                detail = f"{result['error_type']}: {result['message']}"
                corrupt_path = result.get("corrupt_path")
                skip_eligible = result.get("skip_eligible", False)
                failed_map = result.get("failed_map")
                if failed_map is not None:
                    handle_fetch_failure(attempt, failed_map, detail)
                    return
                if result.get("oom"):
                    handle_oom(attempt, detail)
                    return
            record_failure(attempt, detail, corrupt_path, skip_eligible)

        def deadline_breach(attempt: _Attempt, now: float) -> str | None:
            """Why this attempt must die now, or ``None`` to let it run."""
            age = now - attempt.started
            if self.task_timeout is not None and age > self.task_timeout:
                return (f"attempt exceeded task_timeout="
                        f"{self.task_timeout:.3f}s (ran {age:.3f}s)")
            if self.heartbeat_timeout is not None and age > self.heartbeat_timeout:
                try:
                    beat_age = time.time() - os.path.getmtime(
                        attempt.heartbeat_path)
                except OSError:
                    # No heartbeat file at all after the grace window:
                    # the worker never got far enough to start beating.
                    if self.hosts is not None and attempt.host is not None:
                        self.hosts.record_missed_heartbeat(attempt.host)
                    return (f"no heartbeat after {age:.3f}s "
                            f"(timeout {self.heartbeat_timeout:.3f}s)")
                if beat_age > self.heartbeat_timeout:
                    if self.hosts is not None and attempt.host is not None:
                        self.hosts.record_missed_heartbeat(attempt.host)
                    return (f"heartbeat stale for {beat_age:.3f}s "
                            f"(timeout {self.heartbeat_timeout:.3f}s)")
                if self.hosts is not None and attempt.host is not None:
                    self.hosts.record_heartbeat(attempt.host)
            return None

        def enforce_deadlines(now: float) -> None:
            for attempt in list(running):
                reason = deadline_breach(attempt, now)
                if reason is None:
                    continue
                _kill_process(attempt.process)
                retire(attempt)
                trace.record(attempt.spec.task_id, attempt.number,
                             attempt.spec.kind, "timeout", reason)
                record_failure(attempt, reason)
            if (self.wave_deadline is not None
                    and now - wave_started > self.wave_deadline):
                unfinished = [t for t in by_id if t not in results]
                raise WaveDeadlineError(unfinished, self.wave_deadline,
                                        trace.diagnose(unfinished))

        def drain_dead_hosts() -> None:
            """Absorb hosts the monitor declared dead since last poll.

            Every in-flight attempt placed on a dead host is killed and
            requeued *uncharged* (the task did nothing wrong), and --
            in a reduce wave -- every completed map whose only segment
            copies lived on the host is bulk re-executed through the
            ``reexec`` hook, bounded by the monitor's
            ``max_host_reexecs`` budget.
            """
            if self.hosts is None:
                return
            for host in self.hosts.take_newly_dead():
                for a in [x for x in running if x.host == host]:
                    _kill_process(a.process)
                    retire(a)
                    trace.record(a.spec.task_id, a.number, a.spec.kind,
                                 "killed", f"{host} declared dead")
                    shutil.rmtree(a.dir, ignore_errors=True)
                    task_id = a.spec.task_id
                    if (task_id not in results
                            and not any(x.spec.task_id == task_id
                                        for x in running)
                            and not any(s.task_id == task_id
                                        for s, _ in pending)):
                        pending.append((by_id[task_id], 0.0))
                        trace.record(task_id, a.number, a.spec.kind,
                                     "retried", f"{host} died under it "
                                     f"(retry budget uncharged)")
                if reexec is None:
                    continue
                # Completed maps served from the dead host: their only
                # segment copies are gone, so re-execute them before the
                # reducers starve against vanished files.
                try:
                    lost = sorted({
                        ref.map_id
                        for s in by_id.values() if s.kind == "reduce"
                        for ref in s.payload[1]
                        if self.hosts.host_for(ref.map_id) == host})
                except (AttributeError, IndexError, TypeError):
                    lost = []  # payloads are not segment-ref shaped
                if not lost:
                    # Pipelined (combined) waves carry no refs in the
                    # reduce payloads; the completed maps homed on the
                    # dead host are exactly this wave's map results.
                    lost = sorted(
                        t for t, s in by_id.items()
                        if s.kind == "map" and t in results
                        and self.hosts.host_for(t) == host)
                if lost:
                    self.hosts.charge_host_reexec(host, len(lost))
                    for map_id in lost:
                        reexec_map(map_id,
                                   f"{host} died holding its segments")

        def maybe_speculate(now: float) -> None:
            if not self.speculation:
                return
            thresholds = {
                kind: max(self.straggler_factor * statistics.median(done),
                          self.min_straggler_seconds)
                for kind, done in durations.items()
                if len(done) >= self.speculation_min_completed}
            if not thresholds:
                return
            in_flight = defaultdict(int)
            for a in running:
                in_flight[a.spec.task_id] += 1
            queued = {s.task_id for s, _ in pending}
            for a in list(running):
                if (len(running) >= self.max_workers
                        or self._lease.available() <= 0):
                    return
                if pipeline and a.spec.kind == "reduce":
                    # A pipelined reducer's age is dominated by waiting
                    # on late maps; duplicating it burns a slot the map
                    # stragglers (the actual bottleneck) may need.  The
                    # starvation path below covers the pipeline.
                    continue
                threshold = thresholds.get(a.spec.kind)
                if threshold is None:
                    continue
                if (a.speculative or in_flight[a.spec.task_id] > 1
                        or a.spec.task_id in results
                        or a.spec.task_id in queued):
                    continue
                if now - a.started > threshold:
                    if launch(a.spec, speculative=True):
                        in_flight[a.spec.task_id] += 1

        def check_starvation(now: float) -> None:
            """Progress-triggered speculation for pipelined waves.

            A pipelined reducer that has consumed every committed
            segment but still waits on a small set of missing producers
            writes a ``_starved`` marker naming them.  Those maps are
            the measured bottleneck of the whole wave *right now* --
            speculate them immediately (bounded by the starvation
            threshold and the attempt-age floor) instead of waiting for
            the duration median to notice.
            """
            if not pipeline or not self.speculation:
                return
            threshold = (getattr(self.shuffle, "starvation_threshold", 2)
                         if self.shuffle is not None else 2)
            in_flight: dict[str, list[_Attempt]] = defaultdict(list)
            for a in running:
                in_flight[a.spec.task_id].append(a)
            queued = {s.task_id for s, _ in pending}
            reducers = [a for a in running
                        if a.spec.kind == "reduce" and not a.speculative]
            for reducer in reducers:
                try:
                    with open(os.path.join(reducer.dir, STARVED_NAME),
                              encoding="utf-8") as fh:
                        missing = json.load(fh).get("missing", [])
                except (OSError, ValueError):
                    continue
                missing = [m for m in missing
                           if m in by_id and by_id[m].kind == "map"
                           and m not in results]
                if not missing or len(missing) > threshold:
                    # Starved on many maps = the wave is young, not
                    # straggling; let ordinary scheduling catch up.
                    continue
                for map_id in missing:
                    if (len(running) >= self.max_workers
                            or self._lease.available() <= 0):
                        return
                    attempts = in_flight.get(map_id, [])
                    if (len(attempts) != 1 or attempts[0].speculative
                            or map_id in queued):
                        continue
                    if now - attempts[0].started <= self.min_straggler_seconds:
                        continue
                    trace.record(map_id, attempts[0].number, "map",
                                 "pipeline_starved",
                                 f"{reducer.spec.task_id} starved on "
                                 f"{len(missing)} missing segment(s)")
                    if launch(by_id[map_id], speculative=True):
                        in_flight[map_id].append(running[-1])

        def preempt_for_maps(now: float) -> None:
            """Combined-wave deadlock breaker: maps outrank reducers.

            With fewer slots than tasks, every slot can end up holding a
            pipelined reducer that waits on a map which will never get a
            slot (e.g. a map retry queued after the reducers launched).
            Hadoop resolves this with reduce preemption; so do we: when
            a map is launchable and no slot is free, the youngest
            running reduce attempt is killed and requeued *uncharged*
            (it did nothing wrong, and its restart is byte-identical by
            determinism).
            """
            if not pipeline:
                return
            if (len(running) < self.max_workers
                    and self._lease.available() > 0):
                return  # a free slot exists; no need to evict anyone
            launchable_map = any(
                s.kind == "map" and nb <= now and s.task_id not in results
                for s, nb in pending)
            if not launchable_map:
                return
            victims = [a for a in running if a.spec.kind == "reduce"]
            if not victims:
                return
            victim = max(victims, key=lambda a: a.started)
            _kill_process(victim.process)
            retire(victim)
            task_id = victim.spec.task_id
            trace.record(task_id, victim.number, "reduce", "killed",
                         "preempted for pending map work")
            shutil.rmtree(victim.dir, ignore_errors=True)
            if (task_id not in results
                    and not any(a.spec.task_id == task_id for a in running)
                    and not any(s.task_id == task_id for s, _ in pending)):
                pending.append((by_id[task_id], 0.0))
                trace.record(task_id, victim.number, "reduce", "retried",
                             "preempted (retry budget uncharged)")

        try:
            while len(results) < len(by_id):
                if (self.cancel_event is not None
                        and self.cancel_event.is_set()):
                    # The finally sweep kills in-flight workers; every
                    # already-won task is in the manifest (on_complete
                    # fired), so a resume continues from here.
                    raise JobCancelledError(
                        [t for t in by_id if t not in results])
                now = time.monotonic()
                if pipeline:
                    # Maps outrank reduces for free slots (a pipelined
                    # reduce can only drain after every map commits);
                    # stable, so within-kind FIFO order is preserved.
                    pending.sort(key=lambda e: e[0].kind != "map")
                preempt_for_maps(now)
                # Launch work while slots are free (both this wave's own
                # concurrency cap and the shared pool must have room).
                i = 0
                while (i < len(pending)
                       and len(running) < self.max_workers
                       and self._lease.available() > 0):
                    spec, not_before = pending[i]
                    if spec.task_id in results:
                        pending.pop(i)
                        continue
                    if not_before > now:
                        i += 1
                        continue
                    pending.pop(i)
                    if not launch(spec, speculative=False):
                        # Spawn raced a concurrent job for the last
                        # slot and lost; put the task back and wait.
                        pending.insert(i, (spec, not_before))
                        break
                maybe_speculate(now)
                check_starvation(now)
                enforce_deadlines(now)
                # Reap finished workers.
                progressed = False
                for attempt in list(running):
                    if attempt not in running or attempt.process.is_alive():
                        continue
                    attempt.process.join()
                    retire(attempt)
                    progressed = True
                    handle_exit(attempt)
                drain_dead_hosts()
                if not progressed:
                    sentinels = [a.process.sentinel for a in running]
                    if sentinels:
                        # Wake the instant any worker exits instead of
                        # burning a fixed poll quantum.
                        multiprocessing.connection.wait(
                            sentinels, timeout=self.poll_interval)
                    elif pending:
                        # Nothing in flight: sleep just long enough for
                        # the earliest backoff gate to open -- or, when
                        # the shared pool has no slot for us, one poll
                        # quantum (never hot-spin while other jobs hold
                        # the machine).
                        gate = min(nb for _, nb in pending)
                        delay = min(max(gate - now, 0.0),
                                    self.poll_interval)
                        if delay <= 0 and self._lease.available() <= 0:
                            delay = self.poll_interval
                        time.sleep(delay)
                    else:  # pragma: no cover - defensive
                        time.sleep(self.poll_interval)
        finally:
            # Error-path safety net: never leak worker processes.
            for attempt in running:
                attempt.process.terminate()
            for attempt in running:
                attempt.process.join(timeout=2)
                if attempt.process.is_alive():
                    attempt.process.kill()
                    attempt.process.join(timeout=5)
            # Return every slot still charged to this wave: a shared
            # pool must come out whole no matter how the wave ended.
            self._lease.close()
        return results
