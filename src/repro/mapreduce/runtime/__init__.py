"""Parallel task runtime: a multiprocess execution layer for the engine.

The serial :class:`~repro.mapreduce.engine.LocalJobRunner` executes
tasks one at a time and leaves cluster wall-clock to the simulator;
this package actually *uses* the hardware.  It decomposes a job into
the same map -> shuffle -> reduce task DAG, runs the identical task
functions in worker processes over IFile segments on shared disk, and
layers on the robustness a real cluster runtime needs:

* :mod:`~repro.mapreduce.runtime.scheduler` -- bounded worker pool,
  per-task retry with exponential backoff, speculative re-execution of
  stragglers, per-attempt deadlines, heartbeat-staleness kills, and a
  wave deadline with stuck-task diagnosis;
* :mod:`~repro.mapreduce.runtime.recovery` -- durable job manifests
  (checkpoint + resume): completed tasks are recorded with file CRCs
  and adopted by a re-run instead of re-executed;
* :mod:`~repro.mapreduce.runtime.fault` -- deterministic fault
  injection (kill / crash / hang / corrupt / stall / poison) for tests;
* :mod:`~repro.mapreduce.runtime.skipping` -- record-level skipping
  mode (Hadoop SkipBadRecords): bisection over the input record range
  quarantines poison records and salvages corrupt IFile blocks so the
  task completes over the surviving records;
* :mod:`~repro.mapreduce.runtime.shuffle` -- the pluggable transport
  reducers fetch map segments through (direct reads, or a
  fault-injectable framed channel), with bounded-concurrency fetching,
  capped-backoff retries, integrity digests, and fetch-failure
  accounting that escalates to map re-execution;
* :mod:`~repro.mapreduce.runtime.hosts` -- host failure domains: a
  registry of simulated hosts with stable task placement, a health
  monitor escalating heartbeat/fetch/attempt evidence through
  ALIVE -> SUSPECT -> DEAD / BLACKLISTED (with probation), and
  disk-fault workdir failover;
* :mod:`~repro.mapreduce.runtime.pipeline` -- pipelined shuffle: a
  commit-log completion-event stream lets reduce attempts run alongside
  late maps, fetching and merging segments as their producers commit,
  with byte-identical output and counters to the barrier path;
* :mod:`~repro.mapreduce.runtime.trace` -- per-task timeline events and
  measured profiles, consumable by the cluster simulator;
* :mod:`~repro.mapreduce.runtime.runner` -- the drop-in
  :class:`ParallelJobRunner` with byte-identical counters.
"""

from repro.mapreduce.runtime.fault import (
    Fault,
    FaultInjector,
    PoisonRecordError,
    corrupt_file,
    poisoned_job,
)
from repro.mapreduce.runtime.hosts import (
    HostHealthMonitor,
    HostLostError,
    HostRegistry,
    HostState,
    expand_host_partition,
    host_for,
    provision_failover_workdir,
)
from repro.mapreduce.runtime.pipeline import (
    CommitLog,
    CommitRecord,
    PipelinePlan,
    aggregate_pipeline_stats,
    run_reduce_task_pipelined,
)
from repro.mapreduce.runtime.recovery import (
    JobManifest,
    TaskRecord,
    job_fingerprint,
)
from repro.mapreduce.runtime.runner import ParallelJobRunner
from repro.mapreduce.runtime.scheduler import (
    TaskFailedError,
    TaskScheduler,
    TaskSpec,
    WaveDeadlineError,
)
from repro.mapreduce.runtime.shuffle import (
    ChannelTransport,
    DirectTransport,
    FetchFailedError,
    SegmentRef,
    ShuffleConfig,
    ShuffleFetcher,
    TransientFetchError,
    shuffle_config_from_env,
)
from repro.mapreduce.runtime.skipping import (
    QuarantineWriter,
    SkipBudgetExceededError,
    SkipUnsupportedError,
    bisect_poison_records,
    is_skip_eligible,
    run_map_task_skipping,
    run_reduce_task_skipping,
)
from repro.mapreduce.runtime.trace import RuntimeTrace, TaskEvent

__all__ = [
    "ChannelTransport",
    "CommitLog",
    "CommitRecord",
    "DirectTransport",
    "Fault",
    "FaultInjector",
    "FetchFailedError",
    "HostHealthMonitor",
    "HostLostError",
    "HostRegistry",
    "HostState",
    "JobManifest",
    "ParallelJobRunner",
    "PipelinePlan",
    "PoisonRecordError",
    "QuarantineWriter",
    "RuntimeTrace",
    "SegmentRef",
    "ShuffleConfig",
    "ShuffleFetcher",
    "SkipBudgetExceededError",
    "SkipUnsupportedError",
    "TaskEvent",
    "TaskFailedError",
    "TaskRecord",
    "TaskScheduler",
    "TaskSpec",
    "TransientFetchError",
    "WaveDeadlineError",
    "aggregate_pipeline_stats",
    "bisect_poison_records",
    "corrupt_file",
    "expand_host_partition",
    "host_for",
    "is_skip_eligible",
    "provision_failover_workdir",
    "job_fingerprint",
    "poisoned_job",
    "run_map_task_skipping",
    "run_reduce_task_pipelined",
    "run_reduce_task_skipping",
    "shuffle_config_from_env",
]
