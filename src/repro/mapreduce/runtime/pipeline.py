"""Pipelined shuffle: reducers start while late maps are still running.

The classic runners split every job at a hard shuffle barrier -- no
reduce attempt launches until the *last* map commits, so one straggling
map idles the entire reduce side.  Segment epochs and the
:class:`~repro.mapreduce.runtime.shuffle.ShuffleFetcher` already make
each completed map's output individually addressable and safely
re-fetchable, so the barrier is pure scheduling conservatism.  This
module removes it:

* each completed map publishes a :class:`CommitRecord` (segment paths +
  stats, epoch, optional segment-server address) into a shared
  :class:`CommitLog` directory -- the completion-event stream reducers
  poll;
* a reduce attempt launched *alongside* the maps receives a
  :class:`PipelinePlan` instead of resolved segment refs and runs
  :func:`run_reduce_task_pipelined`: it fetches and decodes each
  partition segment as its producing map commits (partial-availability
  fetch over a pending-set), re-fetching at the new epoch when a
  producer is re-executed mid-pipeline, and -- when the job's merge
  factor allows -- folds fetched runs into an accumulated merge so
  reduce-side merge work overlaps the map tail too;
* final output is held until the pending-set drains, so the merged
  stream, the output, and every task counter are **byte-identical** to
  the barrier path (and therefore to the serial runner).

A reducer that has fetched everything committed so far but still has
maps pending writes a ``_starved`` marker naming the missing producers;
the scheduler turns that into *progress-triggered speculation* of the
stragglers, instead of waiting for wave deadlines.

Merge-behavior invariant: incremental folding is only enabled when the
map count fits inside ``job.merge_factor``, which guarantees the
barrier path would plan **zero** on-disk merge passes -- so folding
(a stable prefix merge, associative for ``heapq.merge``'s run-order
tie-breaking) changes neither ``MERGE_PASS_BYTES`` nor the merged
record order.  With more runs than the merge factor, the pipelined path
only overlaps fetch + decode and runs the identical multi-pass merge at
drain time.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.mapreduce.codecs import get_codec
from repro.mapreduce.engine import ReduceTaskResult, _merge_group_reduce
from repro.mapreduce.ifile import IFileReader, IFileStats
from repro.mapreduce.job import Job
from repro.mapreduce.metrics import C, Counters, TaskProfile
from repro.mapreduce.runtime.shuffle import (
    SegmentRef,
    ShuffleConfig,
    ShuffleFetcher,
)
from repro.mapreduce.sort import merge_runs
from repro.util.fsio import atomic_write_bytes
from repro.util.timing import CostClock

__all__ = [
    "COMMITS_DIRNAME",
    "STARVED_NAME",
    "CommitRecord",
    "CommitLog",
    "PipelinePlan",
    "aggregate_pipeline_stats",
    "drain_refs",
    "run_reduce_task_pipelined",
]

#: commit-log directory name inside a run's workdir
COMMITS_DIRNAME = "_commits"
#: marker a starved reducer writes into its own workdir (JSON naming the
#: missing producers), the scheduler's cue to speculate map stragglers
STARVED_NAME = "_starved"


@dataclass(frozen=True)
class CommitRecord:
    """One completed map's published output: the completion event."""

    map_id: str
    #: segment generation; bumped every time the producer re-executes
    #: (fetch-failure escalation or host loss), so a mid-pipeline reader
    #: can tell a re-published record from the one it already consumed
    epoch: int
    #: partition -> ``(path, stats)`` for every reducer partition
    segments: dict[int, tuple[str, IFileStats]] = field(default_factory=dict)
    #: ``(host, port)`` of the segment server holding these segments
    #: (network transport only)
    address: tuple[str, int] | None = None


class CommitLog:
    """Crash-safe completion-event stream over a shared directory.

    Writers (the runner, as each map commits) pickle one
    :class:`CommitRecord` per map into ``<dir>/<map_id>.commit`` via an
    atomic replace -- readers see the old record or the new one, never a
    torn write.  Readers poll with :meth:`poll`; records are re-read
    only when their stat signature changes (an epoch bump rewrites the
    file onto a new inode), so steady-state polling is one ``listdir``
    plus ``stat`` calls, not repeated unpickling.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._cache: dict[str, tuple[tuple[int, int, int], CommitRecord]] = {}

    def commit(self, record: CommitRecord) -> None:
        """Publish (or re-publish, at a bumped epoch) one map's record."""
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, f"{record.map_id}.commit")
        atomic_write_bytes(path, pickle.dumps(record))

    def poll(self) -> dict[str, CommitRecord]:
        """Every currently-published record, keyed by map id.

        Tolerant of races with writers: a record mid-replace, a missing
        directory, or a torn read simply leaves that map absent until
        the next poll.
        """
        out: dict[str, CommitRecord] = {}
        try:
            names = os.listdir(self.directory)
        except OSError:
            return out
        for name in names:
            if not name.endswith(".commit"):
                continue
            path = os.path.join(self.directory, name)
            try:
                st = os.stat(path)
                sig = (st.st_ino, st.st_mtime_ns, st.st_size)
                cached = self._cache.get(name)
                if cached is not None and cached[0] == sig:
                    record = cached[1]
                else:
                    with open(path, "rb") as fh:
                        record = pickle.loads(fh.read())
                    if not isinstance(record, CommitRecord):
                        # Bytes that unpickle to garbage are as torn as
                        # bytes that do not unpickle at all.
                        raise pickle.UnpicklingError(
                            f"not a CommitRecord: {type(record).__name__}")
                    self._cache[name] = (sig, record)
            except OSError:
                continue
            except Exception:
                # A torn or partial record -- a writer that died
                # mid-write without the atomic-replace discipline, a
                # truncated tail after a host crash -- can fail
                # unpickling with nearly any exception type
                # (EOFError, UnpicklingError, AttributeError, ...).
                # Skip it; nothing is cached for it, so the next poll
                # re-reads and picks it up once a complete record lands.
                continue
            out[record.map_id] = record
        return out


@dataclass(frozen=True)
class PipelinePlan:
    """What a pipelined reduce attempt needs instead of resolved refs:
    where the completion events land and which producers to wait for.
    Picklable, so it rides to workers exactly like a segment list."""

    commit_dir: str
    #: every producing map id, **in map task order** -- the order that
    #: fixes merge behavior and therefore output bytes
    map_ids: tuple[str, ...]
    #: seconds between commit-log polls when no fetch work is available
    poll_interval: float = 0.02


def aggregate_pipeline_stats(per_task: list[dict]) -> dict | None:
    """Job-level rollup of the per-reduce ``pipeline`` stat dicts.

    Lives on ``JobResult.pipeline_stats`` -- never in ``Counters`` --
    because these numbers are wall-clock-shaped and would break the
    byte-identity contract between pipeline on/off runs.
    """
    stats = [p for p in per_task if p]
    if not stats:
        return None
    firsts = [p["first_fetch_ms"] for p in stats
              if p.get("first_fetch_ms") is not None]
    return {
        C.REDUCE_FIRST_FETCH_MS: round(min(firsts), 3) if firsts else None,
        C.PIPELINE_OVERLAP: sum(p.get("overlapped_fetches", 0)
                                for p in stats),
        "refetches": sum(p.get("refetches", 0) for p in stats),
        "wait_seconds": round(sum(p.get("wait_seconds", 0.0)
                                  for p in stats), 6),
        "reduces": len(stats),
    }


def _write_starved(workdir: str, missing: list[str]) -> None:
    """Publish the reducer's starvation state for the scheduler."""
    blob = json.dumps({"missing": missing}).encode("utf-8")
    try:
        atomic_write_bytes(os.path.join(workdir, STARVED_NAME), blob)
    except OSError:  # pragma: no cover - workdir being torn down
        pass


def drain_refs(plan: PipelinePlan, part: int) -> list[SegmentRef]:
    """Wait for *every* producer to commit; return barrier-shaped refs.

    The escape hatch for reduce paths that need the full segment list up
    front (skipping mode, corrupt-input fault targeting): it restores
    the barrier semantics for this one attempt, byte-identically, while
    the rest of the wave stays pipelined.  Termination is the caller's
    concern (task/wave deadlines), same as any fetch.
    """
    log = CommitLog(plan.commit_dir)
    while True:
        records = log.poll()
        if all(mid in records for mid in plan.map_ids):
            return [SegmentRef(map_id=mid,
                               path=records[mid].segments[part][0],
                               stats=records[mid].segments[part][1],
                               epoch=records[mid].epoch,
                               address=records[mid].address)
                    for mid in plan.map_ids]
        time.sleep(plan.poll_interval)


def _ref_for(record: CommitRecord, part: int) -> SegmentRef:
    path, stats = record.segments[part]
    return SegmentRef(map_id=record.map_id, path=path, stats=stats,
                      epoch=record.epoch, address=record.address)


def run_reduce_task_pipelined(
    job: Job,
    part: int,
    plan: PipelinePlan,
    workdir: str,
    keep_files: bool = False,
    *,
    shuffle: Any = None,
    fetch_faults: Any = None,
    memory: Any = None,
) -> ReduceTaskResult:
    """Execute one reduce task against a still-filling commit log.

    Fetches and decodes each producer's partition segment as its commit
    record appears (latest epoch wins; an epoch bump after a successful
    fetch discards the old run and re-fetches), folds decoded runs into
    an accumulated prefix merge when ``job.merge_factor`` allows, and
    runs the exact barrier merge/group/reduce tail once the pending-set
    drains -- output and counters byte-identical to
    :func:`~repro.mapreduce.engine.run_reduce_task` over the same final
    segments.

    Only active fetch/decode/merge work is charged to the task's cost
    clock; poll sleeps while waiting on late maps are recorded
    separately in the result's ``pipeline`` stats (they are overlap, not
    work, and must not skew fitted cost models).

    Byte-based backpressure: when ``shuffle.max_inflight_bytes`` is set,
    each producer's priced bytes are charged against the fetcher's byte
    window *for as long as its decoded run is resident*.  The
    next-in-fold-order fetch is always admitted (``force=True`` --
    liveness), so only out-of-order prefetches gate on headroom: a
    gated commit simply stays in the pending-set and is retried on the
    next poll round.  Fold order is fixed by ``plan.map_ids``, so
    deferral changes *when* a run is fetched but never what is merged --
    output and counters stay byte-identical.
    """
    task_id = f"r{part:05d}"
    counters = Counters()
    clock = CostClock()
    profile = TaskProfile(task_id=task_id, kind="reduce")
    codec = get_codec(job.codec, **job.codec_options)
    config = shuffle if shuffle is not None else ShuffleConfig()
    fetcher = ShuffleFetcher(config, counters, task_id, fetch_faults,
                             memory=memory)
    log = CommitLog(plan.commit_dir)

    pending = set(plan.map_ids)
    #: map_id -> priced bytes charged while its decoded run is resident
    held: dict[str, int] = {}
    deferrals = 0
    #: map_id -> (epoch, decoded records, ref) for everything fetched;
    #: decoded records are retained even once folded so an epoch bump of
    #: an already-folded producer can rebuild the fold without refetching
    #: its unaffected neighbors
    fetched: dict[str, tuple[int, list, SegmentRef]] = {}
    # Incremental prefix folding is only byte-safe when the barrier path
    # would plan zero on-disk merge passes (see module docstring).
    fold_enabled = len(plan.map_ids) <= job.merge_factor
    folded: list = []
    fold_upto = 0  # prefix length of plan.map_ids merged into ``folded``

    started = time.monotonic()
    first_fetch_ms: float | None = None
    overlapped = 0
    refetches = 0
    wait_seconds = 0.0
    last_starved: tuple[str, ...] | None = None

    def advance_fold() -> None:
        nonlocal folded, fold_upto
        while fold_upto < len(plan.map_ids):
            mid = plan.map_ids[fold_upto]
            if mid in pending:
                break
            run = fetched[mid][1]
            if run:
                with clock.measure("merge"):
                    folded = list(merge_runs([folded, run])) if folded \
                        else list(run)
            fold_upto += 1

    try:
        while True:
            records = log.poll()
            work: list[CommitRecord] = []
            for mid in plan.map_ids:
                record = records.get(mid)
                if record is None:
                    continue
                if mid in pending:
                    work.append(record)
                elif record.epoch > fetched[mid][0]:
                    # The producer re-executed after we consumed it:
                    # discard the stale run and re-fetch at the new
                    # epoch (identical bytes by determinism, but the
                    # old files are gone and their faults out of scope).
                    work.append(record)
            if not work:
                if not pending:
                    break
                missing = sorted(pending - set(records))
                if missing and tuple(missing) != last_starved:
                    # Everything committed is consumed; name the
                    # stragglers so the scheduler can speculate them.
                    _write_starved(workdir, missing)
                    last_starved = tuple(missing)
                time.sleep(plan.poll_interval)
                wait_seconds += plan.poll_interval
                continue
            visible = sum(1 for mid in plan.map_ids if mid in records)
            progressed = False
            for record in work:
                ref = _ref_for(record, part)
                stale = record.map_id not in pending
                if stale:
                    # A refetch replaces an already-resident run: swap
                    # the charge rather than stacking a second one.
                    old = held.pop(record.map_id, None)
                    if old is not None:
                        fetcher.retire(old)
                    price = fetcher.admit(ref, force=True)
                elif record.map_id == next(
                        (m for m in plan.map_ids if m in pending), None):
                    # The next run in fold order must always proceed,
                    # however full the window: liveness beats the cap.
                    price = fetcher.admit(ref, force=True)
                else:
                    price = fetcher.admit(ref, block=False)
                    if price is None:
                        # No headroom for an out-of-order prefetch:
                        # leave it pending for the next poll round.
                        deferrals += 1
                        continue
                progressed = True
                try:
                    with clock.measure("shuffle"):
                        blob = fetcher.fetch_one(ref)
                        decoded = IFileReader(blob, codec,
                                              path=ref.path).read_all()
                except BaseException:
                    fetcher.retire(price)
                    raise
                held[record.map_id] = price
                if first_fetch_ms is None:
                    first_fetch_ms = (time.monotonic() - started) * 1000.0
                if visible < len(plan.map_ids):
                    overlapped += 1
                if stale:
                    refetches += 1
                    if plan.map_ids.index(record.map_id) < fold_upto:
                        # A folded run went stale: rebuild the fold from
                        # the retained decoded runs (cheap vs refetching
                        # the whole prefix).
                        folded = []
                        fold_upto = 0
                fetched[record.map_id] = (record.epoch, decoded, ref)
                pending.discard(record.map_id)
                if fold_enabled:
                    advance_fold()
            if work and not progressed:
                # Every visible commit was an out-of-order prefetch the
                # window deferred; wait for headroom or the next commit.
                time.sleep(plan.poll_interval)
                wait_seconds += plan.poll_interval
    finally:
        # The drain is complete (or the attempt is dying): the fetch
        # window's residency charges end here, before the merge rent.
        for price in held.values():
            fetcher.retire(price)
        held.clear()
        fetcher.close()

    # Drain: the pending-set is empty and every run is at its final
    # epoch.  Account shuffle bytes once, from the final fetched set --
    # exactly what the barrier path charges.
    final_refs = [fetched[mid][2] for mid in plan.map_ids]
    profile.shuffle_bytes = sum(ref.stats.materialized_bytes
                                for ref in final_refs)
    counters.incr(C.SHUFFLE_BYTES, profile.shuffle_bytes)
    if getattr(config, "transport", "") == "network":
        profile.wire_bytes = counters.get(C.SHUFFLE_WIRE_BYTES)

    if fold_enabled:
        runs = [folded] if folded else []
        run_sizes = [sum(fetched[mid][2].stats.key_bytes
                         + fetched[mid][2].stats.value_bytes
                         for mid in plan.map_ids[:fold_upto])] if folded \
            else []
        tail = plan.map_ids[fold_upto:]
    else:
        runs, run_sizes, tail = [], [], plan.map_ids
    for mid in tail:
        run = fetched[mid][1]
        if run:
            runs.append(run)
            run_sizes.append(fetched[mid][2].stats.key_bytes
                             + fetched[mid][2].stats.value_bytes)

    if memory is not None:
        memory.note_waits(fetcher.backpressure_waits + deferrals)
    rent = (memory.rent(sum(run_sizes), site="merge")
            if memory is not None else nullcontext())
    with rent:
        result = _merge_group_reduce(
            job, task_id, runs, run_sizes, workdir, codec, counters, clock,
            profile, keep_files)
    result.pipeline = {
        "first_fetch_ms": first_fetch_ms,
        "overlapped_fetches": overlapped,
        "refetches": refetches,
        "wait_seconds": round(wait_seconds, 6),
        "fetch_deferrals": deferrals,
    }
    return result
