"""Pluggable shuffle transport: how reducers fetch map-output segments.

Reducers used to ``open()`` map-output IFiles directly, so the
map->reduce hop -- the link the paper compresses, and the one Hadoop
treats as its most fragile phase -- could never fail.  This module
makes the transfer a first-class, failable step:

* :class:`SegmentRef` names one partition segment (producing map task,
  path, byte stats, and an *epoch* that bumps when the scheduler
  re-executes the producer);
* a **transport** moves one segment's bytes: :class:`DirectTransport`
  reads the file (today's behavior, byte-identical), while
  :class:`ChannelTransport` streams it in CRC-framed chunks over an
  in-process channel that a :class:`~repro.mapreduce.runtime.fault.
  FaultInjector` ``fetch`` fault can drop, delay, stall, truncate, or
  bit-flip in flight, and :class:`~repro.mapreduce.runtime.netshuffle.
  NetworkTransport` fetches it from a per-worker TCP segment server
  (with an optional on-the-wire codec -- §III's key compression
  measured as network bytes);
* the :class:`ShuffleFetcher` drives bounded-concurrency fetches with
  per-fetch deadlines, capped exponential backoff with deterministic
  jitter (:mod:`repro.util.backoff`), digest verification
  (:func:`~repro.mapreduce.ifile.segment_digest`), and ``SHUFFLE_*``
  counter accounting.  A segment that stays unfetchable raises
  :class:`FetchFailedError` naming the producing map task -- the signal
  the scheduler's fetch-failure accounting turns into map re-execution
  (Hadoop's "too many fetch failures" protocol).

The failure ladder this module adds, from cheapest rung up: fetch retry
(with backoff) -> reduce-attempt requeue (uncharged against the retry
budget) -> re-execution of the *completed* source map task.  Transfer
damage is the transport's to detect (chunk CRCs + digest); damage at
rest still surfaces as decode-time :class:`~repro.mapreduce.ifile.
IFileCorruptError` and takes the existing repair/skipping rungs.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from threading import Lock
from typing import Mapping, Sequence

from repro.mapreduce.ifile import IFileStats, segment_digest
from repro.mapreduce.metrics import C, Counters
from repro.mapreduce.runtime.fault import Fault
from repro.mapreduce.runtime.memory import MemoryBudget
from repro.util.backoff import backoff_delay
from repro.util.timing import Deadline

__all__ = [
    "SegmentRef",
    "ShuffleConfig",
    "ConfigError",
    "FetchFailedError",
    "TransientFetchError",
    "DirectTransport",
    "ChannelTransport",
    "ShuffleFetcher",
    "make_transport",
    "select_fetch_fault",
    "shuffle_config_from_env",
    "TRANSPORTS",
]

TRANSPORTS = ("direct", "channel", "network")


class ConfigError(ValueError):
    """A shuffle configuration value is malformed or out of range.

    Raised instead of a bare ``ValueError`` so a typo in an environment
    variable or CLI flag surfaces as one readable sentence naming the
    offending setting, not a traceback from ``int()``.
    """


@dataclass(frozen=True)
class SegmentRef:
    """One map-output partition segment, as a reducer addresses it."""

    map_id: str
    path: str
    stats: IFileStats
    #: generation counter: 0 for the original map execution, bumped each
    #: time the scheduler re-executes the producer (old epochs' faults
    #: no longer match, which is what models "re-execution fixed it")
    epoch: int = 0
    #: ``(host, port)`` of the segment server holding this segment, for
    #: the network transport (``None`` for in-process transports).
    #: Addresses ride on refs rather than on the config so a map
    #: re-execution naturally re-points waiting reducers at the
    #: (possibly re-spawned) server.
    address: tuple[str, int] | None = None

    @classmethod
    def from_pair(cls, pair: "tuple[str, IFileStats] | SegmentRef",
                  epoch: int = 0) -> "SegmentRef":
        """Adopt the legacy ``(path, stats)`` segment tuple."""
        if isinstance(pair, cls):
            return pair
        path, stats = pair
        name = os.path.basename(path)
        return cls(map_id=name.split("-out-")[0], path=path, stats=stats,
                   epoch=epoch)


@dataclass(frozen=True)
class ShuffleConfig:
    """Picklable knobs for the reduce-side shuffle (rides into workers)."""

    transport: str = "direct"
    #: extra fetch attempts per segment after the first failure
    fetch_retries: int = 3
    #: per-fetch-attempt deadline in seconds (None = no deadline)
    fetch_timeout: float | None = None
    #: base/cap for the capped, jittered inter-attempt backoff
    backoff: float = 0.02
    backoff_max: float = 0.25
    #: concurrent in-flight fetches per reduce task
    concurrency: int = 4
    #: channel/wire frame size (bytes of segment per CRC-framed chunk)
    chunk_bytes: int = 64 * 1024
    #: codec segment bytes are compressed with *on the wire* (network
    #: transport only; "null" serves segments verbatim via sendfile)
    wire_codec: str = "null"
    #: first TCP port for the network shuffle servers (None = ephemeral)
    port_base: int | None = None
    #: how many segment servers the service spreads map outputs across
    num_servers: int = 2
    #: concurrent requests one segment server will serve; further
    #: connections queue in the listen backlog (server-side backpressure)
    server_concurrency: int = 8
    #: pipelined shuffle: reducers start alongside maps and fetch each
    #: segment as its producing map commits, instead of waiting at the
    #: map->reduce barrier (output stays byte-identical either way)
    pipeline: bool = False
    #: with pipelining on, a reducer starved on at most this many
    #: missing map outputs asks the scheduler to speculate them
    starvation_threshold: int = 2
    #: byte-based fetch backpressure: cap on the summed priced size of
    #: in-flight fetches per reduce task (None = count-based
    #: ``concurrency`` only).  Admission of the next fetch waits on
    #: budget headroom, priced from :class:`SegmentRef` stats.
    max_inflight_bytes: int | None = None
    #: per-task memory ledger capacity in bytes (None = accounting
    #: only).  An enforced charge past this raises ``MemoryError`` and
    #: triggers the runners' degrade-on-retry ladder.
    memory_budget: int | None = None
    #: how many OOM-dead attempts of one task the degrade ladder
    #: absorbs (each retry halves the sort buffer / fetch window)
    max_memory_retries: int = 2

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; have {TRANSPORTS}")
        if self.fetch_retries < 0:
            raise ValueError(
                f"fetch_retries must be >= 0, got {self.fetch_retries}")
        if self.fetch_timeout is not None and self.fetch_timeout <= 0:
            raise ValueError(
                f"fetch_timeout must be > 0, got {self.fetch_timeout}")
        if self.backoff < 0 or self.backoff_max < 0:
            raise ValueError("backoff and backoff_max must be >= 0")
        if self.concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {self.concurrency}")
        if self.chunk_bytes < 256:
            raise ValueError(
                f"chunk_bytes must be >= 256, got {self.chunk_bytes}")
        if not self.wire_codec:
            raise ValueError("wire_codec must be a codec name")
        if self.port_base is not None and not 1024 <= self.port_base <= 65535:
            raise ValueError(
                f"port_base must be in 1024..65535, got {self.port_base}")
        if self.num_servers < 1:
            raise ValueError(
                f"num_servers must be >= 1, got {self.num_servers}")
        if self.server_concurrency < 1:
            raise ValueError(
                f"server_concurrency must be >= 1, "
                f"got {self.server_concurrency}")
        if self.starvation_threshold < 1:
            raise ValueError(
                f"starvation_threshold must be >= 1, "
                f"got {self.starvation_threshold}")
        if self.max_inflight_bytes is not None and self.max_inflight_bytes < 1:
            raise ValueError(
                f"max_inflight_bytes must be >= 1, "
                f"got {self.max_inflight_bytes}")
        # one IFile block (ifile.py floors block_bytes at 256) is the
        # smallest allocation the data path makes; a budget below it
        # could never admit anything
        if self.memory_budget is not None and self.memory_budget < 256:
            raise ValueError(
                f"memory_budget must be >= 256 (one IFile block), "
                f"got {self.memory_budget}")
        if self.max_memory_retries < 1:
            raise ValueError(
                f"max_memory_retries must be >= 1, "
                f"got {self.max_memory_retries}")


def _env_value(kwargs: dict, key: str, var: str, parse) -> None:
    """Parse one environment variable into ``kwargs[key]``.

    A malformed value raises :class:`ConfigError` naming the variable
    and the offending text instead of leaking ``int()``'s traceback.
    """
    raw = os.environ.get(var)
    if raw is None:
        return
    try:
        kwargs[key] = parse(raw)
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"invalid {var}={raw!r}: expected "
            f"{getattr(parse, '__name__', 'value')} ({exc})") from exc


def _parse_bool(raw: str) -> bool:
    """Parse a boolean environment value (``1/0/true/false/yes/no/on/off``)."""
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"not a boolean: {raw!r}")


_parse_bool.__name__ = "boolean (1/0/true/false/yes/no/on/off)"


def shuffle_config_from_env() -> ShuffleConfig | None:
    """A :class:`ShuffleConfig` from ``REPRO_TRANSPORT`` /
    ``REPRO_FETCH_RETRIES`` / ``REPRO_FETCH_TIMEOUT`` /
    ``REPRO_WIRE_CODEC`` / ``REPRO_SHUFFLE_PORT_BASE`` /
    ``REPRO_PIPELINE`` / ``REPRO_STARVATION_THRESHOLD`` /
    ``REPRO_MAX_INFLIGHT_BYTES`` / ``REPRO_MEMORY_BUDGET`` /
    ``REPRO_MAX_MEMORY_RETRIES``, or ``None`` when none of them is set
    (runner default applies).

    Malformed values -- a non-integer retry count, a negative timeout,
    an unknown transport or codec -- raise :class:`ConfigError` with the
    variable name, never a raw ``ValueError`` traceback.
    """
    kwargs: dict = {}
    if (transport := os.environ.get("REPRO_TRANSPORT")) is not None:
        kwargs["transport"] = transport
    _env_value(kwargs, "fetch_retries", "REPRO_FETCH_RETRIES", int)
    _env_value(kwargs, "fetch_timeout", "REPRO_FETCH_TIMEOUT", float)
    if (wire_codec := os.environ.get("REPRO_WIRE_CODEC")) is not None:
        from repro.mapreduce.codecs import available_codecs
        if wire_codec not in available_codecs():
            raise ConfigError(
                f"invalid REPRO_WIRE_CODEC={wire_codec!r}: "
                f"available codecs: {', '.join(available_codecs())}")
        kwargs["wire_codec"] = wire_codec
    _env_value(kwargs, "port_base", "REPRO_SHUFFLE_PORT_BASE", int)
    _env_value(kwargs, "pipeline", "REPRO_PIPELINE", _parse_bool)
    _env_value(kwargs, "starvation_threshold",
               "REPRO_STARVATION_THRESHOLD", int)
    _env_value(kwargs, "max_inflight_bytes", "REPRO_MAX_INFLIGHT_BYTES", int)
    _env_value(kwargs, "memory_budget", "REPRO_MEMORY_BUDGET", int)
    _env_value(kwargs, "max_memory_retries", "REPRO_MAX_MEMORY_RETRIES", int)
    if not kwargs:
        return None
    try:
        return ShuffleConfig(**kwargs)
    except ValueError as exc:
        raise ConfigError(f"invalid shuffle configuration: {exc}") from exc


class TransientFetchError(RuntimeError):
    """One fetch attempt failed in a way a retry may fix.

    ``bytes_received`` is how much crossed the channel before the error,
    for ``SHUFFLE_BYTES_TRANSFERRED`` accounting.
    """

    def __init__(self, message: str, bytes_received: int = 0) -> None:
        super().__init__(message)
        self.bytes_received = bytes_received


class FetchFailedError(RuntimeError):
    """A segment stayed unfetchable through the whole retry budget.

    Names the producing map task so the scheduler can charge the
    (map, reduce) link and, past the threshold, re-execute the map.
    Deliberately *not* skip-eligible: record skipping salvages damaged
    data, but a failed transfer has no data to salvage around.
    """

    def __init__(self, map_id: str, reduce_id: str, attempts: int,
                 detail: str) -> None:
        super().__init__(
            f"fetch of {map_id} -> {reduce_id} failed after "
            f"{attempts} attempt(s): {detail}")
        self.map_id = map_id
        self.reduce_id = reduce_id
        self.attempts = attempts
        self.detail = detail


def select_fetch_fault(faults: Sequence[Fault], attempt: int,
                       epoch: int) -> Fault | None:
    """The planned fault for one fetch attempt of one segment epoch.

    Mirrors :meth:`FaultInjector.fault_for` semantics: an exact attempt
    anchor wins; otherwise the most recently anchored sticky fault at or
    before this attempt applies.  Faults scoped to another epoch never
    match -- re-executed segments escape their predecessor's faults.
    """
    best: Fault | None = None
    for fault in faults:
        if fault.epoch is not None and fault.epoch != epoch:
            continue
        if fault.attempt == attempt:
            return fault
        if fault.sticky and fault.attempt <= attempt:
            if best is None or fault.attempt > best.attempt:
                best = fault
    return best


class DirectTransport:
    """Read the segment file from shared disk -- today's shuffle,
    byte-identical.  There is no wire, so only *connection-level* fetch
    faults apply: ``drop`` (the read is refused outright -- how a host
    partition looks from a shared-disk reducer), ``delay`` (late but
    intact) and ``stall`` (hangs until the fetch deadline).  Payload
    damage ops (``flip``/``truncate``) are meaningless without a frame
    stream and are ignored.  With no faults planned (the default) the
    fetch is a plain file read, zero overhead."""

    def __init__(self,
                 faults: Mapping[str, Sequence[Fault]] | None = None) -> None:
        self.faults = dict(faults) if faults else {}

    def fetch(self, ref: SegmentRef, attempt: int,
              deadline: Deadline) -> bytes:
        if self.faults:
            fault = select_fetch_fault(self.faults.get(ref.map_id, ()),
                                       attempt, ref.epoch)
            if fault is not None:
                if fault.op == "drop":
                    raise TransientFetchError(
                        f"connection to {ref.map_id}'s host refused")
                if fault.op == "delay":
                    deadline.sleep(fault.seconds)
                    if deadline.expired():
                        raise TransientFetchError(
                            f"fetch deadline expired waiting "
                            f"{fault.seconds:.3f}s for a delayed read")
                elif fault.op == "stall":
                    remaining = deadline.remaining()
                    time.sleep(fault.seconds if remaining is None
                               else min(fault.seconds, remaining))
                    raise TransientFetchError(
                        "read stalled; fetch timed out")
        with open(ref.path, "rb") as fh:
            return fh.read()


class ChannelTransport:
    """Stream segments in CRC-framed chunks over an in-process channel.

    The sender reads the segment, computes its
    :class:`~repro.mapreduce.ifile.SegmentDigest`, and streams
    ``chunk_bytes``-sized frames, each with the CRC32 of its *true*
    bytes.  Planned ``fetch`` faults damage the stream on the wire:

    * ``delay``    -- the stream starts ``seconds`` late (intact);
    * ``stall``    -- the stream hangs until the fetch deadline expires;
    * ``drop``     -- the connection dies after ``offset_frac`` of the
      frames (explicit mid-transfer error);
    * ``truncate`` -- the stream ends early but *claims* completion, so
      only the receiver's digest length check catches it;
    * ``flip``     -- one byte flips in flight; the frame CRC catches it.

    The receiver verifies every frame CRC, enforces the deadline between
    frames, and verifies the assembled bytes against the sender's digest
    -- all damage surfaces as :class:`TransientFetchError` before any
    byte reaches the merge.
    """

    def __init__(self, chunk_bytes: int = 64 * 1024,
                 faults: Mapping[str, Sequence[Fault]] | None = None) -> None:
        self.chunk_bytes = chunk_bytes
        self.faults = dict(faults) if faults else {}

    def fetch(self, ref: SegmentRef, attempt: int,
              deadline: Deadline) -> bytes:
        fault = select_fetch_fault(self.faults.get(ref.map_id, ()),
                                   attempt, ref.epoch)
        with open(ref.path, "rb") as fh:
            blob = fh.read()
        digest = segment_digest(blob)
        size = self.chunk_bytes
        frames = [(blob[i:i + size], zlib.crc32(blob[i:i + size]))
                  for i in range(0, len(blob), size)]

        if fault is not None and fault.op == "delay":
            deadline.sleep(fault.seconds)
            if deadline.expired():
                raise TransientFetchError(
                    f"fetch deadline expired waiting {fault.seconds:.3f}s "
                    f"for a delayed stream")
        if fault is not None and fault.op == "stall":
            remaining = deadline.remaining()
            time.sleep(fault.seconds if remaining is None
                       else min(fault.seconds, remaining))
            raise TransientFetchError("transfer stalled; fetch timed out")

        deliver = len(frames)
        if fault is not None and fault.op in ("drop", "truncate"):
            deliver = min(len(frames) - 1,
                          int(len(frames) * fault.offset_frac))
            deliver = max(0, deliver)
        flip_at = (len(frames) // 2 if fault is not None
                   and fault.op == "flip" else None)

        received = bytearray()
        for i, (data, crc) in enumerate(frames):
            if deadline.expired():
                raise TransientFetchError(
                    f"fetch deadline expired after {len(received)} bytes",
                    bytes_received=len(received))
            if i >= deliver and fault is not None and fault.op == "drop":
                raise TransientFetchError(
                    f"channel dropped mid-transfer after frame {i}",
                    bytes_received=len(received))
            if i >= deliver and fault is not None and fault.op == "truncate":
                break  # silent short stream: only the digest notices
            if flip_at == i and data:
                wire = bytearray(data)
                wire[len(wire) // 2] ^= 0xFF
                data = bytes(wire)
            if zlib.crc32(data) != crc:
                raise TransientFetchError(
                    f"frame {i} checksum mismatch in flight",
                    bytes_received=len(received))
            received.extend(data)
        assembled = bytes(received)
        if not digest.matches(assembled):
            raise TransientFetchError(
                f"transfer digest mismatch: got {len(assembled)} bytes, "
                f"sender digested {digest.length}",
                bytes_received=len(assembled))
        return assembled


def make_transport(config: ShuffleConfig,
                   fetch_faults: Mapping[str, Sequence[Fault]] | None = None,
                   counter_sink=None, reduce_id: str = "",
                   memory: MemoryBudget | None = None):
    """Instantiate the transport ``config`` names.

    ``counter_sink(name, amount)`` receives wire-level byte counters
    from transports that measure them (the network transport); the
    in-process transports ignore it.  ``reduce_id`` identifies the
    fetching reduce task on the wire (servers key their fault plan by
    the ``map->reduce`` pair).  ``memory`` (the task ledger) lets the
    network transport account its decompress-time transient under the
    ``"wire"`` site.  The network transport ignores ``fetch_faults``:
    wire faults are applied *server-side*, by the
    :class:`~repro.mapreduce.runtime.netshuffle.ShuffleService`.
    """
    if config.transport == "direct":
        return DirectTransport(fetch_faults)
    if config.transport == "network":
        # Lazy import: netshuffle imports this module's ref/error types.
        from repro.mapreduce.runtime.netshuffle import NetworkTransport
        return NetworkTransport(config, counter_sink=counter_sink,
                                reduce_id=reduce_id, memory=memory)
    return ChannelTransport(config.chunk_bytes, fetch_faults)


class ShuffleFetcher:
    """Reduce-side fetch loop: bounded concurrency, deadlines, retries.

    ``fetch_all`` returns segment blobs **in input order** regardless of
    completion order, so downstream merge behavior -- and therefore
    output bytes -- never depends on scheduling.  Counter totals are
    order-independent sums, guarded by a lock (fetches run on threads).

    With ``config.max_inflight_bytes`` set, admission of the next fetch
    additionally waits on *byte* headroom: each fetch is priced from its
    ref's :class:`~repro.mapreduce.ifile.IFileStats` before being
    issued and charged against a window budget until its blob is
    yielded.  ``memory`` (the task's :class:`~repro.mapreduce.runtime.
    memory.MemoryBudget`, if any) sees the same in-flight charges under
    the ``"fetch"`` site -- where ``oom`` faults and threshold kills
    are applied -- as *forced* charges, since in-flight totals are
    timing-dependent and must never raise on their own.
    """

    def __init__(
        self,
        config: ShuffleConfig,
        counters: Counters,
        reduce_id: str,
        fetch_faults: Mapping[str, Sequence[Fault]] | None = None,
        memory: MemoryBudget | None = None,
    ) -> None:
        self.config = config
        self.counters = counters
        self.reduce_id = reduce_id
        self.memory = memory
        self._window = (MemoryBudget(config.max_inflight_bytes,
                                     name=f"{reduce_id}:fetch-window")
                        if config.max_inflight_bytes is not None else None)
        self._lock = Lock()
        self.transport = make_transport(config, fetch_faults,
                                        counter_sink=self._incr,
                                        reduce_id=reduce_id,
                                        memory=memory)

    def _incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters.incr(name, amount)

    @staticmethod
    def price(ref: SegmentRef) -> int:
        """What one fetch costs the byte window, priced *before* the
        transfer from the segment's materialized size."""
        return max(1, ref.stats.materialized_bytes)

    def admit(self, ref: SegmentRef, *, block: bool = True,
              force: bool = False) -> int | None:
        """Charge one fetch against the byte window and the task ledger.

        ``block=True`` waits for window headroom (the first in-flight
        fetch is always admitted -- grant-when-alone); ``block=False``
        returns ``None`` instead of waiting, for callers (the pipelined
        reducer's out-of-order prefetches) that have something better to
        do; ``force=True`` admits unconditionally -- the pipelined
        reducer's *next-in-fold-order* fetch, which must proceed for
        liveness no matter how full the window is.  Returns the price to
        hand back to :meth:`retire`.
        """
        price = self.price(ref)
        if self._window is not None:
            if force:
                self._window.charge(price, site="fetch", force=True)
            elif block:
                self._window.charge(price, site="fetch", wait=True)
            elif not self._window.try_charge(price, site="fetch"):
                return None
        if self.memory is not None:
            try:
                self.memory.charge(price, site="fetch", force=True)
            except MemoryError:
                # the injected-fault path: give the window bytes back
                # before propagating, or the next attempt starts starved
                if self._window is not None:
                    self._window.release(price, site="fetch")
                raise
        return price

    def retire(self, price: int) -> None:
        """Return one admitted fetch's bytes to the window and ledger."""
        if self._window is not None:
            self._window.release(price, site="fetch")
        if self.memory is not None:
            self.memory.release(price, site="fetch")

    @property
    def backpressure_waits(self) -> int:
        """How many fetch admissions blocked on byte headroom."""
        return (self._window.backpressure_waits
                if self._window is not None else 0)

    def fetch_all(self, refs: Sequence[SegmentRef]) -> list[bytes]:
        """Fetch every segment; raises :class:`FetchFailedError` on the
        first segment that exhausts its retry budget.  Blobs come back
        **in input order** regardless of which fetch finished first.
        Pooled transport connections are closed before returning either
        way."""
        refs = list(refs)
        if not refs:
            return []
        try:
            blobs: list[bytes | None] = [None] * len(refs)
            for index, blob in self.fetch_iter(refs):
                blobs[index] = blob
            return blobs  # type: ignore[return-value]
        finally:
            self.close()

    def fetch_iter(self, refs: Sequence[SegmentRef]):
        """Fetch segments concurrently, yielding ``(index, blob)`` pairs
        in *completion* order.

        The index ties each blob back to its ref, so callers that need
        deterministic downstream behavior (every caller that merges)
        re-order by index; callers that overlap fetch with decode (the
        pipelined reduce path) consume results as they land.  Raises
        :class:`FetchFailedError` from the first segment that exhausts
        its retry budget; remaining in-flight fetches are cancelled or
        abandoned.  Does *not* close the transport -- callers that are
        done fetching call :meth:`close`.
        """
        refs = list(refs)
        if not refs:
            return
        workers = min(self.config.concurrency, len(refs))
        if workers == 1:
            for index, ref in enumerate(refs):
                price = self.admit(ref)
                try:
                    blob = self.fetch_one(ref)
                finally:
                    self.retire(price)
                yield index, blob
            return
        from concurrent.futures import (FIRST_COMPLETED, ThreadPoolExecutor,
                                        wait)
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="fetch") as pool:
            in_flight: dict = {}
            next_up = 0
            try:
                while next_up < len(refs) or in_flight:
                    # submit while the byte window has headroom; with
                    # nothing in flight the next fetch always goes out
                    # (grant-when-alone), so the loop cannot starve
                    while next_up < len(refs):
                        ref = refs[next_up]
                        price = self.admit(ref, block=not in_flight)
                        if price is None:
                            break  # wait for a completion to free bytes
                        future = pool.submit(self.fetch_one, ref)
                        in_flight[future] = (next_up, price)
                        next_up += 1
                    done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, price = in_flight.pop(future)
                        try:
                            blob = future.result()
                        finally:
                            self.retire(price)
                        yield index, blob
            finally:
                for future, (_, price) in in_flight.items():
                    future.cancel()
                    self.retire(price)

    def close(self) -> None:
        """Release pooled transport connections (idempotent)."""
        close = getattr(self.transport, "close", None)
        if close is not None:
            close()

    def fetch_one(self, ref: SegmentRef) -> bytes:
        """Fetch one segment through the full retry ladder."""
        last = "no attempts made"
        for attempt in range(self.config.fetch_retries + 1):
            if attempt > 0:
                self._incr(C.SHUFFLE_RETRIES)
                time.sleep(backoff_delay(
                    self.config.backoff, attempt, self.config.backoff_max,
                    key=f"{self.reduce_id}:{ref.map_id}:{ref.epoch}"))
            self._incr(C.SHUFFLE_FETCHES)
            deadline = Deadline(self.config.fetch_timeout)
            try:
                blob = self.transport.fetch(ref, attempt, deadline)
            except FileNotFoundError as exc:
                # The segment is *gone* (invalidated or lost): no retry
                # of this epoch can succeed, so escalate immediately.
                self._incr(C.SHUFFLE_FAILED_FETCHES)
                raise FetchFailedError(
                    ref.map_id, self.reduce_id, attempt + 1,
                    f"segment missing: {exc}") from exc
            except TransientFetchError as exc:
                self._incr(C.SHUFFLE_FAILED_FETCHES)
                self._incr(C.SHUFFLE_BYTES_TRANSFERRED, exc.bytes_received)
                last = str(exc)
                continue
            self._incr(C.SHUFFLE_BYTES_TRANSFERRED, len(blob))
            return blob
        raise FetchFailedError(ref.map_id, self.reduce_id,
                               self.config.fetch_retries + 1, last)
