"""Per-task timeline events and measured profiles of one parallel run.

Every scheduling decision the runtime makes -- queueing, launching,
finishing, retrying, speculating, killing a loser -- is recorded as a
:class:`TaskEvent` in a :class:`RuntimeTrace`.  The trace doubles as the
bridge to the cluster simulator: :meth:`RuntimeTrace.task_profiles`
returns the winning attempts' :class:`~repro.mapreduce.metrics.
TaskProfile` objects in task order, directly consumable by
:meth:`~repro.mapreduce.simcluster.model.ClusterSimulator.simulate` --
so a *measured* parallel execution can be re-priced onto a described
cluster exactly like a serial one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.mapreduce.metrics import TaskProfile

__all__ = ["TaskEvent", "RuntimeTrace"]

#: event vocabulary, in rough lifecycle order
EVENT_KINDS = (
    "queued",      # task admitted to the wave
    "started",     # an attempt's worker process launched
    "finished",    # an attempt produced the winning result
    "failed",      # an attempt died or returned an error
    "retried",     # a fresh attempt was queued after a failure
    "speculated",  # a duplicate attempt launched for a straggler
    "killed",      # a still-running rival attempt was terminated
    "discarded",   # a losing attempt's output was thrown away
    "repaired",    # a corrupt map segment was re-generated in place
    "timeout",     # an attempt was killed for deadline/heartbeat breach
    "adopted",     # a checkpointed result was validated and reused
    "skipping",    # an attempt launched in record-skipping mode
    "quarantined", # a winning attempt skipped records into quarantine
    "fetch_failure",  # a reduce attempt could not fetch a map segment
    "map_reexec",  # a completed map task was re-executed after its
                   # segments exceeded the fetch-failure threshold
    "wire_served", # a network shuffle server streamed one segment
    "wire_stale",  # a network shuffle server rejected an epoch-stale
                   # (or draining) segment request
    "host_suspect",     # a host missed enough heartbeats to be suspect
    "host_dead",        # a host was declared dead (its segments are gone)
    "host_blacklisted", # a host was benched after repeated task failures
    "host_reinstated",  # a blacklisted host finished probation cleanly
    "disk_failover",    # a task's workdir failed and spilled to a spare
    "manifest_corrupt", # a resume checkpoint failed CRC/parse validation
    "pipeline_commit",  # a map's output was published to the commit log
                        # (pipelined shuffle's completion-event stream)
    "pipeline_starved", # a pipelined reducer named missing producers and
                        # the scheduler speculated the stragglers
    "pipeline_drain",   # a pipelined reducer's pending-set drained (its
                        # detail carries the overlap stats)
    "oom_degraded",     # an attempt died by OOM and was requeued with
                        # deterministically halved memory knobs
    "memory_peak",      # a winning attempt's ledger peak (detail:
                        # "<peak>/<budget>"), for budget assertions
)


@dataclass(frozen=True)
class TaskEvent:
    """One point on the runtime timeline."""

    task_id: str
    attempt: int
    kind: str       # "map" or "reduce"
    event: str      # one of EVENT_KINDS
    timestamp: float  # seconds since the trace was created
    detail: str = ""


class RuntimeTrace:
    """Ordered event log plus the winning profile per task."""

    def __init__(self) -> None:
        self._t0 = time.monotonic()
        self.events: list[TaskEvent] = []
        self._profiles: dict[str, TaskProfile] = {}

    # ------------------------------------------------------------ recording

    def record(self, task_id: str, attempt: int, kind: str, event: str,
               detail: str = "") -> None:
        if event not in EVENT_KINDS:
            raise ValueError(f"unknown event {event!r}")
        self.events.append(TaskEvent(
            task_id=task_id,
            attempt=attempt,
            kind=kind,
            event=event,
            timestamp=time.monotonic() - self._t0,
            detail=detail,
        ))

    def set_profile(self, task_id: str, profile: TaskProfile) -> None:
        """Install the winning attempt's measured profile for a task."""
        self._profiles[task_id] = profile

    # ------------------------------------------------------------ queries

    def events_for(self, task_id: str) -> list[TaskEvent]:
        return [e for e in self.events if e.task_id == task_id]

    def count(self, event: str) -> int:
        """How many times ``event`` occurred across all tasks."""
        if event not in EVENT_KINDS:
            raise ValueError(f"unknown event {event!r}")
        return sum(1 for e in self.events if e.event == event)

    def attempts(self, task_id: str) -> int:
        """Number of distinct attempts launched for ``task_id``."""
        return len({e.attempt for e in self.events_for(task_id)
                    if e.event in ("started", "speculated")})

    def diagnose(self, task_ids: Sequence[str]) -> str:
        """One line per task: its last recorded event, for error reports.

        This is what a wave-deadline :class:`~repro.mapreduce.runtime.
        scheduler.TaskFailedError` carries, so "the job timed out" always
        names *which* tasks were stuck and what they were last seen doing.
        """
        lines = []
        for tid in task_ids:
            events = self.events_for(tid)
            if not events:
                lines.append(f"{tid}: never scheduled")
                continue
            last = events[-1]
            detail = f" [{last.detail}]" if last.detail else ""
            lines.append(
                f"{tid}: attempt {last.attempt} {last.event} "
                f"at {last.timestamp:.3f}s{detail}")
        return "\n".join(lines)

    def task_profiles(self, kind: str | None = None) -> list[TaskProfile]:
        """Winning profiles in task-id order (maps sort before reduces).

        The returned list is what the cluster simulator consumes:
        ``ClusterSimulator().simulate(trace.task_profiles())``.
        """
        profiles = [self._profiles[t] for t in sorted(self._profiles)]
        if kind is not None:
            profiles = [p for p in profiles if p.kind == kind]
        return profiles

    @property
    def wall_clock(self) -> float:
        """Seconds from trace start to the last recorded event."""
        return max((e.timestamp for e in self.events), default=0.0)

    def task_wall_clock(self, task_id: str) -> float:
        """First-start to winning-finish span of one task."""
        events = self.events_for(task_id)
        starts = [e.timestamp for e in events if e.event == "started"]
        ends = [e.timestamp for e in events if e.event == "finished"]
        if not starts or not ends:
            return 0.0
        return max(ends) - min(starts)

    def format_timeline(self) -> str:
        """Human-readable event log (debugging / bench reports)."""
        lines = []
        for e in self.events:
            detail = f"  [{e.detail}]" if e.detail else ""
            lines.append(
                f"{e.timestamp:9.4f}s  {e.task_id}.{e.attempt:<2d} "
                f"{e.event:<10s}{detail}"
            )
        return "\n".join(lines)
