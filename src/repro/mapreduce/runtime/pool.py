"""Shared worker-process pool: the service owns the slots, schedulers
borrow them.

Before the job service existed, every :class:`~repro.mapreduce.runtime.
scheduler.TaskScheduler` owned its worker processes outright: it forked
attempts freely up to its private ``max_workers`` and nothing else on
the machine had a say.  A long-lived daemon running many tenants' jobs
concurrently needs the opposite ownership: **one** pool of worker slots
for the whole process, with every scheduler *leasing* capacity from it.
That inversion is this module.

:class:`WorkerPool` tracks two budgets under one lock:

* a **global slot count** (``max_workers``) -- the hard bound on live
  worker processes across every concurrently running job; and
* **per-tenant quotas** -- a tenant may be capped below the global
  bound, so one tenant's wide job cannot starve the rest of the pool
  even when slots are free (the service sets quotas from its config).

A scheduler asks for a :class:`PoolLease` (tagged with its tenant) and
then *spawns through the lease*: every successful spawn charges one
global slot and one tenant slot; every release returns both.  The pool
also keeps the multiprocessing context (fork server, start-method
choice) alive across jobs -- the "warm" half of the warm pool: job N+1
forks from the same parent image job N did, with no per-job runtime
setup or teardown.

A scheduler constructed *without* a pool builds a private single-tenant
one, so standalone ``repro run`` behaves exactly as before -- the
refactor changes ownership, not behavior.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Any

from repro.mapreduce.runtime.memory import MemoryBudget

__all__ = ["PoolSaturatedError", "WorkerPool", "PoolLease"]


class PoolSaturatedError(RuntimeError):
    """A spawn was attempted with no slot available.

    Schedulers are expected to check :meth:`PoolLease.available` before
    launching; this error firing means a bookkeeping bug, not overload
    (overload is handled by *not launching*, never by crashing).
    """


class WorkerPool:
    """Bounded, tenant-aware factory for worker processes.

    Thread-safe: the service's concurrent job executors all spawn
    through the same pool.  ``max_workers`` bounds live processes
    globally; :meth:`set_quota` bounds one tenant's share.  The pool
    never *queues* spawn requests -- capacity checks are the caller's
    poll loop's job -- it only accounts and forks.
    """

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None,
                 max_memory_bytes: int | None = None) -> None:
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.context = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._running = 0
        #: live worker processes per tenant
        self._tenant_running: dict[str, int] = {}
        #: concurrent-task cap per tenant (absent = global bound only)
        self._quotas: dict[str, int] = {}
        #: pool-global memory ledger: the admission controller charges
        #: each admitted job's *priced* peak memory per tenant here, so
        #: one tenant's memory-hungry jobs cannot overcommit the machine
        #: even when worker slots are free
        self.memory = MemoryBudget(max_memory_bytes, name="pool")

    # -------------------------------------------------------------- config

    def set_quota(self, tenant: str, max_tasks: int) -> None:
        """Cap ``tenant`` at ``max_tasks`` concurrent worker processes."""
        if max_tasks < 1:
            raise ValueError(f"quota must be >= 1, got {max_tasks}")
        with self._lock:
            self._quotas[tenant] = max_tasks

    def set_memory_quota(self, tenant: str, nbytes: int | None) -> None:
        """Cap ``tenant``'s outstanding priced job memory."""
        self.memory.set_quota(tenant, nbytes)

    def lease(self, tenant: str = "default") -> "PoolLease":
        """A spawn handle charged to ``tenant``'s quota."""
        return PoolLease(self, tenant)

    # ------------------------------------------------------------ accounting

    def _available(self, tenant: str) -> int:
        with self._lock:
            free = self.max_workers - self._running
            quota = self._quotas.get(tenant)
            if quota is not None:
                free = min(free, quota - self._tenant_running.get(tenant, 0))
            return max(0, free)

    def _acquire(self, tenant: str) -> bool:
        with self._lock:
            if self._running >= self.max_workers:
                return False
            quota = self._quotas.get(tenant)
            if (quota is not None
                    and self._tenant_running.get(tenant, 0) >= quota):
                return False
            self._running += 1
            self._tenant_running[tenant] = (
                self._tenant_running.get(tenant, 0) + 1)
            return True

    def _release(self, tenant: str) -> None:
        with self._lock:
            # Defensive floor: a double release must not open phantom
            # capacity (the invariant the lease's bookkeeping protects).
            self._running = max(0, self._running - 1)
            held = self._tenant_running.get(tenant, 0)
            if held <= 1:
                self._tenant_running.pop(tenant, None)
            else:
                self._tenant_running[tenant] = held - 1

    # --------------------------------------------------------------- queries

    def running(self) -> int:
        """Live worker processes across every lease."""
        with self._lock:
            return self._running

    def running_for(self, tenant: str) -> int:
        """Live worker processes charged to one tenant."""
        with self._lock:
            return self._tenant_running.get(tenant, 0)

    def stats(self) -> dict[str, Any]:
        """Snapshot for health endpoints and traces."""
        with self._lock:
            out = {
                "max_workers": self.max_workers,
                "running": self._running,
                "per_tenant": dict(sorted(self._tenant_running.items())),
                "quotas": dict(sorted(self._quotas.items())),
            }
        out["memory"] = self.memory.stats()
        return out


class PoolLease:
    """One scheduler's borrowing handle on a shared :class:`WorkerPool`.

    Every :meth:`spawn` charges a slot; the matching :meth:`release`
    must follow when the process is reaped or killed.  The lease keeps
    its own outstanding count so :meth:`close` can return slots leaked
    by an error path -- a crashed scheduler must never permanently
    shrink the daemon's pool.
    """

    def __init__(self, pool: WorkerPool, tenant: str) -> None:
        self.pool = pool
        self.tenant = tenant
        self._lock = threading.Lock()
        self._outstanding = 0

    def available(self) -> int:
        """Slots a spawn could take right now (global AND tenant caps)."""
        return self.pool._available(self.tenant)

    def spawn(self, target: Any, args: tuple, *,
              daemon: bool = True) -> Any:
        """Fork-and-start one worker process inside a charged slot."""
        if not self.pool._acquire(self.tenant):
            raise PoolSaturatedError(
                f"no worker slot free for tenant {self.tenant!r} "
                f"({self.pool.stats()})")
        try:
            process = self.pool.context.Process(
                target=target, args=args, daemon=daemon)
            process.start()
        except BaseException:
            self.pool._release(self.tenant)
            raise
        with self._lock:
            self._outstanding += 1
        return process

    def release(self) -> None:
        """Return one slot (the process was reaped or killed)."""
        with self._lock:
            if self._outstanding <= 0:
                return  # already balanced; never double-credit the pool
            self._outstanding -= 1
        self.pool._release(self.tenant)

    def close(self) -> None:
        """Return every slot this lease still holds (error-path sweep)."""
        while True:
            with self._lock:
                if self._outstanding <= 0:
                    return
                self._outstanding -= 1
            self.pool._release(self.tenant)
