"""Record-level skipping mode: Hadoop's SkipBadRecords, reproduced.

A task that dies on one poison record is wasteful at any scale and
fatal at the scales the paper targets -- so Hadoop re-runs a failing
attempt in *skipping mode*, bisecting the input record range until the
poison records are isolated, then processes everything else and ships
the poison to a skip directory.  This module is that ladder rung for
both runners:

* :func:`run_map_task_skipping` wraps the engine's map task with a
  driver that bisects the split's flat cell range via
  :meth:`~repro.mapreduce.api.Mapper.map_range` probes, quarantines
  the poison cells, and maps the clean remainder with the real
  context -- the output is exactly the clean run's output minus the
  poison cells' emissions.
* :func:`run_reduce_task_skipping` hooks the engine's reduce task:
  corrupt *blocks* of chunked segments are salvaged around
  (:meth:`~repro.mapreduce.ifile.IFileReader.read_salvage`),
  undecodable records are filtered before the shuffle plugin, and each
  key group runs in isolation so one poison group is quarantined
  instead of failing the task.

Skipped records land in an IFile-format quarantine side-file
(``<task_id>-quarantine``) and are surfaced through the
``RECORDS_SKIPPED`` / ``QUARANTINE_RECORDS`` / ``QUARANTINE_BYTES``
counters.  A :class:`~repro.mapreduce.job.SkipPolicy` budget bounds how
much a task may skip: a fault that poisons everything must still fail.

Skipping only ever engages *after* a strict attempt failed, so the
clean path stays byte-identical to a runtime without this module.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

from repro.mapreduce.api import MapContext, ReduceContext
from repro.mapreduce.codecs import NullCodec
from repro.mapreduce.engine import (
    MapTaskOutput,
    ReduceTaskResult,
    run_map_task,
    run_reduce_task,
)
from repro.mapreduce.ifile import (
    IFileBlockCorruptError,
    IFileCorruptError,
    IFileReader,
    IFileWriter,
)
from repro.mapreduce.job import Job
from repro.mapreduce.metrics import C, Counters
from repro.mapreduce.sort import group_by_key
from repro.util.errors import CorruptRecordError

__all__ = [
    "SkipUnsupportedError",
    "SkipBudgetExceededError",
    "QuarantineWriter",
    "is_skip_eligible",
    "bisect_poison_records",
    "run_map_task_skipping",
    "run_reduce_task_skipping",
]


class SkipUnsupportedError(RuntimeError):
    """The task cannot run in skipping mode (no ``map_range`` support)."""


class SkipBudgetExceededError(RuntimeError):
    """More records needed skipping than the policy's budget allows."""

    def __init__(self, task_id: str, skipped: int, budget: int) -> None:
        super().__init__(
            f"{task_id}: {skipped} records need skipping, budget is {budget}")
        self.task_id = task_id
        self.skipped = skipped
        self.budget = budget


def is_skip_eligible(exc: BaseException) -> bool:
    """Whether a failure should send the task into skipping mode.

    Skipping handles failures that *localize to records*: user-code
    exceptions and block-local corruption.  It explicitly does not
    handle whole-segment corruption (:class:`IFileCorruptError` other
    than the block-local subclass -- that is the repair rung's job),
    failed shuffle transfers (:class:`~repro.mapreduce.runtime.shuffle.
    FetchFailedError` -- the fetch-failure/re-execution ladder's job;
    there is no data to skip around), or skipping's own terminal errors
    (budget exhausted, unsupported).
    """
    from repro.mapreduce.runtime.shuffle import FetchFailedError
    if isinstance(exc, (SkipBudgetExceededError, SkipUnsupportedError,
                        FetchFailedError)):
        return False
    if isinstance(exc, IFileCorruptError):
        return isinstance(exc, IFileBlockCorruptError)
    return isinstance(exc, Exception)


def bisect_poison_records(
    n: int,
    probe: Callable[[int, int], bool],
    budget: int,
    task_id: str = "?",
) -> list[int]:
    """Isolate the failing records in ``[0, n)`` by range bisection.

    ``probe(lo, hi)`` runs the user code over records ``[lo, hi)`` and
    returns True when it survives.  A failing range is split in half
    until single failing records remain -- Hadoop's shrinking skip
    window, O(k log n) probes for k poison records.  Raises
    :class:`SkipBudgetExceededError` as soon as more than ``budget``
    poison records have been found.
    """
    poison: list[int] = []
    stack: list[tuple[int, int]] = [(0, n)]
    while stack:
        lo, hi = stack.pop()
        if lo >= hi:
            continue
        if probe(lo, hi):
            continue
        if hi - lo == 1:
            poison.append(lo)
            if len(poison) > budget:
                raise SkipBudgetExceededError(task_id, len(poison), budget)
            continue
        mid = (lo + hi) // 2
        stack.append((mid, hi))
        stack.append((lo, mid))
    return sorted(poison)


class QuarantineWriter:
    """Collects skipped records and commits them to a quarantine IFile.

    Records are ``(key, value)`` byte pairs -- the actual skipped
    intermediate records where they exist (reduce groups), or a
    ``<task_id>/<origin>/<index>`` tag key with the raw poisoned bytes
    as the value where they don't (map input cells, corrupt blocks).
    ``skipped`` counts *logical input records* lost, which is what the
    budget bounds and the ``RECORDS_SKIPPED`` counter reports.
    """

    def __init__(self, task_id: str, workdir: str, policy: Any) -> None:
        self.task_id = task_id
        self.policy = policy
        directory = policy.quarantine_dir or workdir
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, f"{task_id}-quarantine")
        self._records: list[tuple[bytes, bytes]] = []
        self.skipped = 0

    def add(self, key: bytes, value: bytes, skipped: int = 1) -> None:
        """Quarantine one record; raises past the policy's budget."""
        self._records.append((bytes(key), bytes(value)))
        self.skipped += skipped
        if self.skipped > self.policy.skip_budget:
            raise SkipBudgetExceededError(
                self.task_id, self.skipped, self.policy.skip_budget)

    def add_tagged(self, tag: str, payload: bytes, skipped: int = 1) -> None:
        """Quarantine raw bytes under a provenance tag key."""
        self.add(tag.encode("utf-8"), payload, skipped)

    @property
    def quarantine_bytes(self) -> int:
        """Total key+value bytes quarantined so far."""
        return sum(len(k) + len(v) for k, v in self._records)

    def commit(self, counters: Counters) -> str | None:
        """Write the side-file (if non-empty) and bump the counters.

        Returns the side-file path, or ``None`` when nothing was
        skipped (no empty quarantine files litter the clean-ish case).
        """
        if not self._records:
            return None
        counters.incr(C.RECORDS_SKIPPED, self.skipped)
        counters.incr(C.QUARANTINE_RECORDS, len(self._records))
        counters.incr(C.QUARANTINE_BYTES, self.quarantine_bytes)
        writer = IFileWriter(self.path, NullCodec(), atomic=True)
        for key, value in self._records:
            writer.append(key, value)
        writer.close()
        return self.path


def _require_policy(job: Job, task_id: str) -> Any:
    """The job's skip policy, or a clear error if skipping is off."""
    if job.skipping is None:
        raise ValueError(
            f"{task_id}: skipping mode requires job.skipping to be set")
    return job.skipping


def run_map_task_skipping(job: Job, split: Any, dataset: Any,
                          workdir: str) -> MapTaskOutput:
    """Re-run a failed map attempt in skipping mode.

    Bisects the split's flat cell index range with throwaway probe
    mappers (fresh instances, null emit context), quarantines the
    isolated poison cells (tag ``<task_id>/map-input/<index>``, value =
    the cell's raw input bytes), then maps the clean ranges with the
    engine-provided mapper and real context.  Counters gain the skip
    totals on top of the standard accounting.
    """
    task_id = f"m{split.split_id:05d}"
    policy = _require_policy(job, task_id)
    quarantine = QuarantineWriter(task_id, workdir, policy)

    def driver(mapper: Any, drv_split: Any, values: Any,
               ctx: MapContext) -> None:
        """Probe-bisect-then-map replacement for ``mapper.map``."""
        n = int(values.size)

        def probe(lo: int, hi: int) -> bool:
            probe_mapper = job.mapper()
            if getattr(probe_mapper, "wants_dataset", False):
                probe_mapper.dataset = dataset
            null_ctx = MapContext(
                job.key_serde, job.value_serde, lambda kb, vb: None,
                Counters(), batch_sink=lambda keys, vals: None)
            probe_mapper.setup(drv_split)
            try:
                probe_mapper.map_range(drv_split, values, null_ctx, lo, hi)
                probe_mapper.cleanup(null_ctx)
                return True
            except NotImplementedError as exc:
                raise SkipUnsupportedError(
                    f"{task_id}: {type(probe_mapper).__name__} does not "
                    f"implement map_range") from exc
            except (SkipUnsupportedError, SkipBudgetExceededError):
                raise
            except Exception:
                return False

        try:
            poison = bisect_poison_records(n, probe, policy.skip_budget,
                                           task_id)
        except SkipUnsupportedError:
            # Mapper can't bisect (no map_range): degrade to a plain
            # retry -- a transient failure still recovers, a sticky one
            # fails the attempt again exactly as without skipping.
            mapper.map(drv_split, values, ctx)
            mapper.cleanup(ctx)
            return
        flat = values.reshape(-1)
        pos = 0
        for index in poison:
            if pos < index:
                mapper.map_range(drv_split, values, ctx, pos, index)
            pos = index + 1
        if pos < n:
            mapper.map_range(drv_split, values, ctx, pos, n)
        mapper.cleanup(ctx)
        for index in poison:
            quarantine.add_tagged(
                f"{task_id}/map-input/{index}", flat[index:index + 1].tobytes())

    out = run_map_task(job, split, dataset, workdir, driver=driver)
    quarantine.commit(out.counters)
    return out


def run_reduce_task_skipping(
    job: Job,
    part: int,
    segments: Sequence[Any],
    workdir: str,
    keep_files: bool = False,
    shuffle: Any = None,
    fetch_faults: Any = None,
) -> ReduceTaskResult:
    """Re-run a failed reduce attempt in skipping mode.

    Three isolation layers, engaged through the engine's reduce hooks:

    1. a corrupt *block* of a chunked input segment is salvaged around
       -- healthy blocks are kept, the bad block's raw bytes are
       quarantined (tag ``<task_id>/block/<segment>/<index>``), and the
       footer's record count for it is charged to the skip budget;
    2. records whose key or value no longer decode are dropped before
       the shuffle plugin sees them (tag ``<task_id>/record/<index>``);
    3. each key group runs against the reducer in isolation -- a group
       that raises is quarantined as its actual ``(key, value)``
       records and contributes nothing to output or group counters.

    Whole-segment corruption still raises :class:`IFileCorruptError`:
    that is the repair rung's job, not skipping's.
    """
    task_id = f"r{part:05d}"
    policy = _require_policy(job, task_id)
    quarantine = QuarantineWriter(task_id, workdir, policy)

    def segment_reader(path: str, codec: Any,
                       blob: bytes) -> list[tuple[bytes, bytes]]:
        """Strict decode of the fetched bytes, falling back to block
        salvage on block damage (``path`` is provenance only)."""
        try:
            return IFileReader(blob, codec, path=path).read_all()
        except IFileBlockCorruptError:
            reader = IFileReader(blob, codec, verify_checksum=False,
                                 path=path)
            records, bad = reader.read_salvage()
            base = os.path.basename(path)
            for block in bad:
                quarantine.add_tagged(
                    f"{task_id}/block/{base}/{block.index}",
                    block.raw, skipped=block.records)
            return records

    def prepare_filter(
        merged: list[tuple[bytes, bytes]],
    ) -> list[tuple[bytes, bytes]]:
        """Drop records the job's serdes can no longer decode."""
        if job.shuffle_plugin is None:
            return merged
        out = []
        for index, (kb, vb) in enumerate(merged):
            try:
                job.key_serde.from_bytes(kb)
                job.value_serde.from_bytes(vb)
            except CorruptRecordError:
                quarantine.add_tagged(
                    f"{task_id}/record/{index}", bytes(kb) + bytes(vb))
                continue
            out.append((kb, vb))
        return out

    def group_driver(reducer: Any, merged: list[tuple[bytes, bytes]],
                     ctx: ReduceContext) -> None:
        """Per-group fault isolation around the engine's reduce loop."""
        for kb, value_blobs in group_by_key(merged):
            sub_counters = Counters()
            sub_ctx = ReduceContext(sub_counters)
            try:
                key = job.key_serde.from_bytes(kb)
                values = job.value_serde.read_batch(value_blobs)
                reducer.reduce(key, values, sub_ctx)
            except (SkipBudgetExceededError, SkipUnsupportedError):
                raise
            except Exception:
                for vb in value_blobs:
                    quarantine.add(kb, vb)
                continue
            ctx.counters.incr(C.REDUCE_INPUT_GROUPS)
            ctx.counters.incr(C.REDUCE_INPUT_RECORDS, len(value_blobs))
            ctx.counters.merge(sub_counters)
            ctx.output.extend(sub_ctx.output)

    result = run_reduce_task(
        job, part, segments, workdir, keep_files=keep_files,
        segment_reader=segment_reader, prepare_filter=prepare_filter,
        group_driver=group_driver, shuffle=shuffle,
        fetch_faults=fetch_faults)
    quarantine.commit(result.counters)
    return result
