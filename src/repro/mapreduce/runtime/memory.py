"""Byte-accounted memory: the ledger every byte-holding component rents.

A :class:`MemoryBudget` is a thread-safe byte ledger, charged and
released under one lock exactly like ``PoolLease`` slots.  It serves
two roles:

* **per-task** -- each worker builds one budget from the job's
  ``ShuffleConfig.memory_budget`` and hands it to the task body; the
  sort buffer, the shuffle fetch window, and the reduce-side merge all
  rent their resident bytes from it.  An *enforced* charge that would
  overrun capacity raises :class:`MemoryBudgetExceeded` (a
  ``MemoryError``), which the runners' degrade-on-retry ladder turns
  into a smaller-buffer retry.  Charges are sized from deterministic
  byte counts, so serial and parallel attempts charge identically.
* **pool-global** -- the worker pool and the admission controller use
  per-``owner`` charges with optional quotas to bound a tenant's
  outstanding priced memory across jobs.

Backpressure is the *waiting* flavor of a charge: ``charge(n,
wait=True)`` blocks until headroom opens (a releasing thread notifies).
Liveness is guaranteed by the **grant-when-alone** rule: a charge
larger than capacity is admitted when nothing else is charged -- a
single oversized allocation cannot be made smaller by waiting, so the
ledger records the overdraft instead of deadlocking.  Waiting never
raises; only enforced non-waiting charges do.

Fault hooks make memory a first-class injected failure: ``fail_next``
plants a simulated ``MemoryError`` at the next charge against a chosen
site, ``alloc_next`` really allocates (exercising a genuine
``MemoryError`` under ``RLIMIT_AS``), and ``kill_above`` invokes a
callback -- SIGKILL-style in workers -- when a site's charged bytes
cross a threshold, which is how the R7 skew scenario simulates the
kernel OOM killer.

Telemetry (``backpressure_waits``, peaks) is wall-clock-shaped and
lives in ``JobResult.memory_stats`` / trace events, never in the
counter-equality set.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["MemoryBudget", "MemoryBudgetExceeded"]


class MemoryBudgetExceeded(MemoryError):
    """An enforced charge would overrun the budget's capacity.

    Subclasses :class:`MemoryError` so the degrade ladders treat a
    budget overrun exactly like a real allocation failure.
    """

    def __init__(self, message: str, *, requested: int = 0,
                 used: int = 0, capacity: int | None = None) -> None:
        super().__init__(message)
        self.requested = requested
        self.used = used
        self.capacity = capacity


class MemoryBudget:
    """A thread-safe byte ledger with backpressure and fault hooks.

    ``capacity=None`` means unlimited: the ledger still tracks usage
    and peaks (accounting-only mode) but never blocks or raises.
    """

    def __init__(self, capacity: int | None = None, *,
                 name: str = "memory") -> None:
        if capacity is not None:
            capacity = int(capacity)
            if capacity < 1:
                raise ValueError(
                    f"capacity must be >= 1 or None, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._cond = threading.Condition(threading.Lock())
        self._used = 0
        self._peak = 0
        self._sites: dict[str, int] = defaultdict(int)
        self._site_peaks: dict[str, int] = defaultdict(int)
        self._owners: dict[str, int] = defaultdict(int)
        self._owner_peaks: dict[str, int] = defaultdict(int)
        self._quotas: dict[str, int] = {}
        self._waits = 0
        self._charges = 0
        # fault hooks (armed per attempt by the worker / serial runner)
        self._fail_sites: dict[str, int] = {}
        self._alloc_sites: dict[str, int] = {}
        self._kill_at: int | None = None
        self._kill_site: str | None = None
        self._on_kill: Callable[[int], None] | None = None

    # ------------------------------------------------------------ fault hooks

    def fail_next(self, site: str, times: int = 1) -> None:
        """Raise a simulated ``MemoryError`` at the next ``times``
        charges against ``site`` (``-1`` = every one)."""
        with self._cond:
            self._fail_sites[site] = times

    def alloc_next(self, site: str, nbytes: int) -> None:
        """Really allocate ``nbytes`` at the next charge against
        ``site`` -- under ``RLIMIT_AS`` this raises a *genuine*
        ``MemoryError`` before any page is touched.  Size it well past
        physical RAM (or run under an rlimit): an allocation that
        merely *fits* is freed immediately and injects nothing."""
        with self._cond:
            self._alloc_sites[site] = int(nbytes)

    def kill_above(self, threshold: int,
                   callback: Callable[[int], None],
                   site: str | None = None) -> None:
        """Invoke ``callback(charged_bytes)`` the moment charged bytes
        (for ``site``, or the whole ledger) cross ``threshold`` --
        the simulated kernel OOM killer."""
        with self._cond:
            self._kill_at = int(threshold)
            self._kill_site = site
            self._on_kill = callback

    def _poke(self, site: str) -> None:
        """Apply any armed fault for a charge against ``site``."""
        with self._cond:
            remaining = self._fail_sites.get(site)
            if remaining:
                if remaining > 0:
                    self._fail_sites[site] = remaining - 1
                fire = True
            else:
                fire = False
            alloc = self._alloc_sites.pop(site, None)
        if fire:
            raise MemoryError(
                f"injected MemoryError at {self.name}:{site}")
        if alloc is not None:
            # Outside the lock: a real allocation attempt must never
            # wedge other charging threads.
            buf = bytearray(alloc)  # MemoryError here is the injection
            del buf

    # ------------------------------------------------------------ the ledger

    def _admits(self, n: int, owner: str | None) -> bool:
        """Capacity/quota check under the lock, grant-when-alone."""
        if self.capacity is not None and self._used + n > self.capacity \
                and self._used > 0:
            return False
        if owner is not None:
            quota = self._quotas.get(owner)
            if quota is not None and self._owners[owner] + n > quota \
                    and self._owners[owner] > 0:
                return False
        return True

    def _apply(self, n: int, site: str, owner: str | None) -> int:
        self._used += n
        self._charges += 1
        if self._used > self._peak:
            self._peak = self._used
        self._sites[site] += n
        if self._sites[site] > self._site_peaks[site]:
            self._site_peaks[site] = self._sites[site]
        if owner is not None:
            self._owners[owner] += n
            if self._owners[owner] > self._owner_peaks[owner]:
                self._owner_peaks[owner] = self._owners[owner]
        return self._sites[site] if self._kill_site is not None \
            else self._used

    def charge(self, n: int, *, site: str = "", owner: str | None = None,
               wait: bool = False, enforce: bool = False,
               force: bool = False) -> bool:
        """Charge ``n`` bytes against the ledger.

        * ``wait=True``  -- block until headroom admits the charge
          (backpressure); always succeeds eventually (grant-when-alone).
        * ``enforce=True`` -- raise :class:`MemoryBudgetExceeded` if the
          charge does not fit *right now* (the deterministic simulated-
          rlimit mode the degrade ladder reacts to).
        * ``force=True`` -- apply unconditionally, recording overdraft;
          for timing-dependent accounting (in-flight fetch bytes) that
          must observe the fault hooks but never block or raise.
        * none of them  -- return ``False`` if the charge does not fit
          (``try_charge`` flavor).
        """
        n = int(n)
        if n < 0:
            raise ValueError(f"charge must be >= 0, got {n}")
        self._poke(site)
        waited = False
        with self._cond:
            while not force and not self._admits(n, owner):
                if not wait:
                    if enforce:
                        raise MemoryBudgetExceeded(
                            f"{self.name} budget exceeded at {site or '?'}: "
                            f"charge {n} with {self._used}/{self.capacity} "
                            f"used", requested=n, used=self._used,
                            capacity=self.capacity)
                    return False
                if not waited:
                    waited = True
                    self._waits += 1
                self._cond.wait(0.05)
            watched = self._apply(n, site, owner)
            kill = (self._on_kill if self._kill_at is not None
                    and watched >= self._kill_at
                    and (self._kill_site is None or site == self._kill_site)
                    else None)
        if kill is not None:
            kill(watched)
        return True

    def try_charge(self, n: int, *, site: str = "",
                   owner: str | None = None) -> bool:
        """Non-blocking, non-raising charge; ``False`` if no headroom."""
        return self.charge(n, site=site, owner=owner)

    def release(self, n: int, *, site: str = "",
                owner: str | None = None) -> None:
        """Return ``n`` bytes; floors defensively at zero (a double
        release must never corrupt the ledger) and wakes waiters."""
        n = int(n)
        if n < 0:
            raise ValueError(f"release must be >= 0, got {n}")
        with self._cond:
            self._used = max(0, self._used - n)
            self._sites[site] = max(0, self._sites[site] - n)
            if owner is not None:
                self._owners[owner] = max(0, self._owners[owner] - n)
            self._cond.notify_all()

    @contextmanager
    def rent(self, n: int, *, site: str = "", owner: str | None = None,
             wait: bool = False, enforce: bool = True) -> Iterator[None]:
        """Charge for the duration of a ``with`` block; the release is
        unconditional, so no exception path can leak charged bytes."""
        self.charge(n, site=site, owner=owner, wait=wait, enforce=enforce)
        try:
            yield
        finally:
            self.release(n, site=site, owner=owner)

    def note_waits(self, n: int) -> None:
        """Fold in backpressure waits observed by a satellite budget
        (e.g. a fetcher's byte window) so one ledger tells the story."""
        with self._cond:
            self._waits += int(n)

    # ------------------------------------------------------------ quotas

    def set_quota(self, owner: str, nbytes: int | None) -> None:
        """Cap one owner's concurrent charged bytes (``None`` clears)."""
        with self._cond:
            if nbytes is None:
                self._quotas.pop(owner, None)
            else:
                nbytes = int(nbytes)
                if nbytes < 1:
                    raise ValueError(
                        f"quota must be >= 1 or None, got {nbytes}")
                self._quotas[owner] = nbytes

    def owner_used(self, owner: str) -> int:
        with self._cond:
            return self._owners.get(owner, 0)

    # ------------------------------------------------------------ queries

    @property
    def used(self) -> int:
        with self._cond:
            return self._used

    @property
    def peak(self) -> int:
        with self._cond:
            return self._peak

    @property
    def backpressure_waits(self) -> int:
        with self._cond:
            return self._waits

    def headroom(self) -> int | None:
        """Bytes until capacity; ``None`` when unlimited."""
        with self._cond:
            if self.capacity is None:
                return None
            return max(0, self.capacity - self._used)

    def stats(self) -> dict:
        """Snapshot for ``/health`` and ``memory_stats`` reporting."""
        with self._cond:
            return {
                "capacity": self.capacity,
                "used": self._used,
                "peak": self._peak,
                "headroom": (None if self.capacity is None
                             else max(0, self.capacity - self._used)),
                "sites": {k: v for k, v in sorted(self._sites.items()) if v},
                "site_peaks": dict(sorted(self._site_peaks.items())),
                "owners": {k: v for k, v in sorted(self._owners.items())},
                "owner_peaks": dict(sorted(self._owner_peaks.items())),
                "quotas": dict(sorted(self._quotas.items())),
                "backpressure_waits": self._waits,
                "charges": self._charges,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryBudget({self.name}: {self.used}/"
                f"{self.capacity if self.capacity is not None else 'inf'}"
                f" peak={self.peak})")
