"""Host failure domains: registry, health monitor, and placement.

Hadoop's production robustness treats the *host* (tasktracker node) as
the failure domain: a node that stops heartbeating loses every task it
was running AND every committed map output it was serving, and a node
that keeps failing tasks is blacklisted so the scheduler stops feeding
it work.  This module gives the simulated runtime the same shape.

Every task is pinned to a simulated host by a stable hash -- the *same*
``crc32(task_id) % n`` hash the network shuffle service uses to spread
segment servers, so with ``num_hosts == num_servers`` a host and its
segment server are one failure domain: when the host dies, its server
and the only copies of its maps' segments die with it.

The health state machine::

            missed heartbeats            fetch strikes while
            >= suspect threshold         already suspect
    ALIVE ---------------------> SUSPECT ----------------> DEAD
      |  ^                          |
      |  | heartbeat seen           | heartbeat seen
      |  +--------------------------+
      |
      | task failures >= blacklist threshold
      v                probation (clean attempts
    BLACKLISTED <----- after capped backoff) ----> ALIVE

The SUSPECT -> DEAD edge deliberately requires *both* kinds of
evidence.  A network partition makes every fetch from a host fail while
its workers keep heartbeating: strikes pile up but heartbeats keep
arriving, so the host stays (at most) SUSPECT and the per-link fetch
retry ladder is left to heal the partition.  Only a host that is both
silent *and* unfetchable is declared dead -- which is what distinguishes
"the switch port died" from "the machine died" without any extra
protocol.

DEAD is terminal for a run (its segments are gone; the scheduler bulk
re-executes the producing maps).  BLACKLISTED is recoverable: after a
capped-backoff bench period the host re-enters *probation*, and a run
of clean attempts reinstates it -- a failure during probation re-benches
it with a doubled (capped) backoff, Hadoop's heuristic for flaky nodes.
"""

from __future__ import annotations

import errno
import json
import os
import time
from dataclasses import dataclass, field

from repro.util.backoff import backoff_delay
from repro.util.placement import placement_index

__all__ = [
    "HOST_STATES",
    "DISK_MARKER",
    "HostState",
    "HostRegistry",
    "HostHealthMonitor",
    "host_for",
    "provision_failover_workdir",
]

HOST_STATES = ("ALIVE", "SUSPECT", "DEAD", "BLACKLISTED")

#: marker file a disk-fault failover leaves in the quarantined workdir
DISK_MARKER = "_QUARANTINED"


def host_for(task_id: str, num_hosts: int) -> str:
    """The simulated host a task (or its output) lives on.

    Same stable hash as ``ShuffleService.server_index`` -- both sides
    call :func:`repro.util.placement.placement_index` -- so host k and
    segment server k are one failure domain when the counts match.
    """
    if num_hosts <= 0:
        raise ValueError(f"num_hosts must be >= 1, got {num_hosts}")
    return f"host{placement_index(task_id, num_hosts)}"


@dataclass
class HostState:
    """Mutable health record for one simulated host."""

    name: str
    state: str = "ALIVE"
    #: consecutive missed heartbeat checks (reset on any heartbeat)
    missed_heartbeats: int = 0
    #: fetch-failure strikes against segments this host serves
    fetch_strikes: int = 0
    #: task-attempt failures counted toward blacklisting
    task_failures: int = 0
    #: times this host has been blacklisted (drives the capped backoff)
    blacklist_count: int = 0
    #: monotonic time the current blacklist bench ends; probation after
    blacklist_until: float = 0.0
    #: clean attempts observed during probation
    probation_successes: int = 0
    #: completed maps re-executed because this host died
    reexecs: int = 0
    #: why the host left ALIVE, for trace details
    reason: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def usable(self) -> bool:
        """May the scheduler place new work here?"""
        return self.state in ("ALIVE", "SUSPECT")


class HostRegistry:
    """Fixed fleet of simulated hosts with stable task placement."""

    def __init__(self, num_hosts: int = 2) -> None:
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be >= 1, got {num_hosts}")
        self.num_hosts = num_hosts
        self._hosts: dict[str, HostState] = {
            f"host{i}": HostState(f"host{i}") for i in range(num_hosts)
        }

    def host_for(self, task_id: str) -> str:
        return host_for(task_id, self.num_hosts)

    def get(self, name: str) -> HostState:
        return self._hosts[name]

    def names(self) -> list[str]:
        return [f"host{i}" for i in range(self.num_hosts)]

    def states(self) -> dict[str, str]:
        return {name: h.state for name, h in sorted(self._hosts.items())}

    def usable_hosts(self) -> list[str]:
        return [n for n in self.names() if self._hosts[n].usable]

    def __len__(self) -> int:
        return self.num_hosts


class HostHealthMonitor:
    """Escalates per-host evidence into the ALIVE/SUSPECT/DEAD/
    BLACKLISTED state machine and answers placement queries.

    Evidence feeds (all driven by machinery that already exists):

    * ``record_heartbeat`` / ``record_missed_heartbeat`` -- the
      scheduler's heartbeat-staleness sweep, aggregated per host;
    * ``record_fetch_strike`` -- the fetch-failure ladder, whenever a
      strike lands against a map whose segments live on the host;
    * ``record_task_success`` / ``record_task_failure`` -- task-attempt
      outcomes, counted toward blacklisting and probation.

    All thresholds are explicit so the property tests can pin the
    transition rules; the defaults are tuned for the simulated runtime's
    sub-second heartbeat intervals.
    """

    def __init__(self, registry: HostRegistry, *,
                 suspect_heartbeat_misses: int = 2,
                 dead_fetch_strikes: int = 2,
                 blacklist_failures: int = 3,
                 probation_clean_attempts: int = 2,
                 reinstate_backoff: float = 0.05,
                 reinstate_backoff_max: float = 1.0,
                 max_host_reexecs: int = 2,
                 trace=None,
                 clock=time.monotonic) -> None:
        for name, value in (
                ("suspect_heartbeat_misses", suspect_heartbeat_misses),
                ("dead_fetch_strikes", dead_fetch_strikes),
                ("blacklist_failures", blacklist_failures),
                ("probation_clean_attempts", probation_clean_attempts)):
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if reinstate_backoff < 0 or reinstate_backoff_max < 0:
            raise ValueError("reinstate backoff values must be >= 0")
        if max_host_reexecs < 0:
            raise ValueError(
                f"max_host_reexecs must be >= 0, got {max_host_reexecs}")
        self.registry = registry
        self.suspect_heartbeat_misses = suspect_heartbeat_misses
        self.dead_fetch_strikes = dead_fetch_strikes
        self.blacklist_failures = blacklist_failures
        self.probation_clean_attempts = probation_clean_attempts
        self.reinstate_backoff = reinstate_backoff
        self.reinstate_backoff_max = reinstate_backoff_max
        self.max_host_reexecs = max_host_reexecs
        self.trace = trace
        self.clock = clock
        #: hosts declared dead but not yet drained by the scheduler
        self._newly_dead: list[str] = []
        #: job-level accounting the runners fold into counters
        self.hosts_lost = 0
        self.maps_reexecuted_host = 0

    # ------------------------------------------------------------ helpers

    def host_for(self, task_id: str) -> str:
        return self.registry.host_for(task_id)

    def _record(self, host: str, event: str, detail: str) -> None:
        if self.trace is not None:
            self.trace.record(host, 0, "host", event, detail)

    def _transition(self, h: HostState, state: str, reason: str) -> None:
        h.state = state
        h.reason = reason

    # ------------------------------------------------------------ evidence

    def record_heartbeat(self, host: str) -> None:
        """A worker on ``host`` touched its heartbeat file recently."""
        h = self.registry.get(host)
        h.missed_heartbeats = 0
        if h.state == "SUSPECT":
            # The host is talking again; clear suspicion but keep the
            # strike count -- a flapping host should not get an
            # infinitely refreshed strike budget.
            self._transition(h, "ALIVE", "")

    def record_missed_heartbeat(self, host: str) -> None:
        """One heartbeat-staleness breach attributed to ``host``."""
        h = self.registry.get(host)
        if h.state in ("DEAD", "BLACKLISTED"):
            return
        h.missed_heartbeats += 1
        if (h.state == "ALIVE"
                and h.missed_heartbeats >= self.suspect_heartbeat_misses):
            self._transition(h, "SUSPECT",
                             f"{h.missed_heartbeats} missed heartbeats")
            self._record(host, "host_suspect", h.reason)

    def record_fetch_strike(self, host: str) -> None:
        """A fetch-failure strike landed on a map served by ``host``.

        Strikes alone never kill a host: a partitioned host keeps
        heartbeating, and per-link retries are the right medicine.
        Only a host that is *already* SUSPECT (silent) accumulates
        strikes toward DEAD.
        """
        h = self.registry.get(host)
        if h.state in ("DEAD", "BLACKLISTED"):
            return
        h.fetch_strikes += 1
        if (h.state == "SUSPECT"
                and h.fetch_strikes >= self.dead_fetch_strikes):
            self.declare_dead(host, f"suspect and {h.fetch_strikes} "
                                    f"fetch strikes")

    def record_task_success(self, host: str) -> None:
        """A task attempt completed cleanly on ``host``."""
        h = self.registry.get(host)
        if h.state != "BLACKLISTED":
            h.task_failures = 0
            return
        # Probation only starts once the bench period has elapsed.
        if self.clock() < h.blacklist_until:
            return
        h.probation_successes += 1
        if h.probation_successes >= self.probation_clean_attempts:
            self._transition(h, "ALIVE", "")
            h.task_failures = 0
            h.probation_successes = 0
            self._record(host, "host_reinstated",
                         f"{self.probation_clean_attempts} clean attempts")

    def record_task_failure(self, host: str, detail: str = "") -> None:
        """A task attempt failed on ``host`` (counts toward blacklist)."""
        h = self.registry.get(host)
        if h.state == "DEAD":
            return
        if h.state == "BLACKLISTED":
            # A failure during probation re-benches with doubled backoff.
            if self.clock() >= h.blacklist_until:
                h.probation_successes = 0
                self._blacklist(h, f"failed during probation: {detail}")
            return
        h.task_failures += 1
        if h.task_failures >= self.blacklist_failures:
            self._blacklist(h, detail or f"{h.task_failures} task failures")

    def _blacklist(self, h: HostState, reason: str) -> None:
        h.blacklist_count += 1
        bench = backoff_delay(
            self.reinstate_backoff, h.blacklist_count,
            self.reinstate_backoff_max, key=f"blacklist:{h.name}")
        h.blacklist_until = self.clock() + bench
        h.probation_successes = 0
        self._transition(h, "BLACKLISTED", reason)
        self._record(h.name, "host_blacklisted",
                     f"{reason}; bench {bench:.3f}s")

    def declare_dead(self, host: str, reason: str = "host crash") -> None:
        """Declare ``host`` dead outright (host_crash injection, or the
        SUSPECT + strikes escalation).  Idempotent."""
        h = self.registry.get(host)
        if h.state == "DEAD":
            return
        self._transition(h, "DEAD", reason)
        self.hosts_lost += 1
        self._newly_dead.append(host)
        self._record(host, "host_dead", reason)

    # ------------------------------------------------------------ queries

    def is_dead(self, host: str) -> bool:
        return self.registry.get(host).state == "DEAD"

    def placeable(self, host: str) -> bool:
        """May new work be placed on ``host`` right now?

        DEAD hosts never take work.  BLACKLISTED hosts take *probation*
        work once their bench period has elapsed (how else would they
        ever produce the clean attempts that reinstate them?).
        """
        h = self.registry.get(host)
        if h.state == "DEAD":
            return False
        if h.state == "BLACKLISTED":
            return self.clock() >= h.blacklist_until
        return True

    def place(self, task_id: str) -> str:
        """The host this attempt should run on.

        The stable-hash home host wins when placeable; otherwise the
        wave rebalances onto the next placeable host in ring order.  A
        fully-benched fleet falls back to the home host (the scheduler's
        own retry bounds are the backstop -- refusing to place anything
        would deadlock the wave).
        """
        home = self.registry.host_for(task_id)
        if self.placeable(home):
            return home
        names = self.registry.names()
        start = names.index(home)
        for step in range(1, len(names)):
            candidate = names[(start + step) % len(names)]
            if self.placeable(candidate):
                return candidate
        return home

    def take_newly_dead(self, only: set[str] | None = None) -> list[str]:
        """Drain hosts declared dead since the last call (scheduler's
        cue to kill their attempts and bulk re-execute their maps).

        With ``only``, drains just those hosts and leaves the rest
        queued -- the pipelined runner handles its injected crashes
        inline mid-wave and must not swallow an organic death the
        scheduler's sweep still has to process.
        """
        if only is None:
            dead, self._newly_dead = self._newly_dead, []
            return dead
        dead = [h for h in self._newly_dead if h in only]
        self._newly_dead = [h for h in self._newly_dead if h not in only]
        return dead

    def charge_host_reexec(self, host: str, maps: int) -> None:
        """Account ``maps`` completed maps re-executed because ``host``
        died; raises past ``max_host_reexecs`` *maps per lost host*."""
        h = self.registry.get(host)
        h.reexecs += maps
        self.maps_reexecuted_host += maps
        if h.reexecs > self.max_host_reexecs:
            raise HostLostError(
                f"{host} lost {h.reexecs} completed maps, exceeding "
                f"max_host_reexecs={self.max_host_reexecs}")


class HostLostError(RuntimeError):
    """Re-execution debt from a lost host exceeded ``max_host_reexecs``."""


def provision_failover_workdir(primary: str, task_id: str, host: str,
                               fault) -> str:
    """Fail a task's workdir over to its spare volume (``disk_fault``).

    Simulates the planned disk error (ENOSPC or EIO) hitting ``primary``
    the moment the task would first spill: the bad directory is
    quarantined with a :data:`DISK_MARKER` file, a deterministic
    side-file ``<task_id>-disk.json`` is dropped under
    ``$REPRO_QUARANTINE_DIR`` (no paths or attempt numbers, so serial
    and parallel runs produce identical bytes), and the task proceeds in
    the returned spare directory -- ``<primary>/spare``, modelling a
    second volume mounted beside the failing one.  Idempotent: retries
    and rival attempts converge on the same spare.
    """
    code = errno.ENOSPC if fault.op == "enospc" else errno.EIO
    record = {
        "error": errno.errorcode[code],
        "host": host,
        "task_id": task_id,
    }
    marker = os.path.join(primary, DISK_MARKER)
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            json.dump({"error": errno.errorcode[code], "host": host,
                       "detail": os.strerror(code)}, fh, sort_keys=True)
    quarantine_dir = os.environ.get("REPRO_QUARANTINE_DIR")
    if quarantine_dir:
        os.makedirs(quarantine_dir, exist_ok=True)
        side = os.path.join(quarantine_dir, f"{task_id}-disk.json")
        with open(side, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    spare = os.path.join(primary, "spare")
    os.makedirs(spare, exist_ok=True)
    return spare


def expand_host_partition(injector, host: str, map_ids, reduce_ids,
                          num_hosts: int, drops: int) -> int:
    """Expand a ``host_partition`` fault into deterministic fetch drops.

    A partition severs every map->reduce link out of ``host`` at once.
    Expressing it as connection-``drop`` fetch faults on attempts
    ``0..drops-1`` of each affected link (``drops <= fetch_retries``, so
    the last attempt lands) makes the partition heal *in-attempt*
    through the ordinary retry ladder with retry counts that are pure
    functions of the plan -- byte-identical between the serial and
    parallel runners, which a wall-clock partition window can never be.
    Works over every transport: the in-process transports apply the
    drops client-side, the network servers server-side.

    Idempotent (re-expansion skips planned entries); returns the number
    of fault entries added.
    """
    from repro.mapreduce.runtime.fault import Fault, fetch_pair_id
    added = 0
    for map_id in sorted(map_ids):
        if host_for(map_id, num_hosts) != host:
            continue
        for reduce_id in sorted(reduce_ids):
            key = fetch_pair_id(map_id, reduce_id)
            for att in range(drops):
                if injector.has(key, att):
                    continue
                injector.add(key, Fault("fetch", att, op="drop", epoch=None))
                added += 1
    return added


__all__ += ["HostLostError", "expand_host_partition"]
