"""Durable job recovery: checkpoint manifests for resumable execution.

A parallel job writes a **job manifest** -- one JSON file inside its
recovery directory, re-committed atomically (tmp + fsync + rename) on
every state transition -- recording:

* a **job fingerprint**: a stable hash of the job configuration and the
  input split geometry, so a resume can only adopt work produced by the
  *same* job;
* **wave membership**: which task ids belong to the map and reduce
  waves (the reduce wave is only known once every map has finished --
  its presence in the manifest doubles as the shuffle-barrier marker);
* a **task record** per completed task: the winning attempt number, its
  attempt directory, and the CRC32 of every artifact the rest of the
  job depends on (the pickled result, plus each map output segment).

If the scheduler process dies mid-job,
:class:`~repro.mapreduce.runtime.runner.ParallelJobRunner` can re-run
with ``resume=True``: every manifest record whose fingerprint matches
and whose files still exist with matching checksums is **adopted** --
its result is loaded from disk instead of re-executing the task -- and
only the remainder of the wave is scheduled.  Validation is pessimistic
by design: a missing file, a CRC mismatch, or a fingerprint change
silently demotes the record to "re-run it", never to "trust it".

Counters, profiles, and reduce output travel inside the pickled task
results, so a resumed job's merged :class:`~repro.mapreduce.metrics.
Counters` are byte-identical to an uninterrupted run's -- the property
the chaos soak harness (`benchmarks/bench_r1_chaos.py`) pins down.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.util.fsio import atomic_write_bytes

__all__ = [
    "MANIFEST_NAME",
    "TaskRecord",
    "JobManifest",
    "job_fingerprint",
    "file_crc32",
]

#: manifest filename inside a recovery (run) directory
MANIFEST_NAME = "manifest.json"

#: bump when the manifest schema changes; older manifests are ignored
MANIFEST_VERSION = 1


def file_crc32(path: str) -> int:
    """CRC32 of a file's contents (streamed; files are segment-sized)."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def _describe(obj: Any, depth: int = 0) -> str:
    """A stable, human-auditable description of one config component.

    Must be identical across *processes* for the same logical config:
    never fall back to a default ``repr`` (it embeds a memory address,
    which would make every job fingerprint unique and veto adoption).
    Arbitrary objects hash as their class plus recursively described
    attribute state, depth-bounded against cycles and bulk data.
    """
    if obj is None:
        return "none"
    if isinstance(obj, (str, int, float, bool, bytes)):
        return repr(obj)
    if isinstance(obj, (tuple, list)):
        return "[" + ",".join(_describe(o, depth) for o in obj) + "]"
    if isinstance(obj, dict):
        items = sorted((str(k), _describe(v, depth)) for k, v in obj.items())
        return "{" + ",".join(f"{k}={v}" for k, v in items) + "}"
    if isinstance(obj, type):
        return f"{obj.__module__}.{obj.__qualname__}"
    qualname = getattr(obj, "__qualname__", None)
    if callable(obj) and qualname is not None:  # function / method / lambda
        return f"{getattr(obj, '__module__', '?')}.{qualname}"
    cls = f"{type(obj).__module__}.{type(obj).__qualname__}"
    try:
        state = vars(obj)
    except TypeError:
        state = None
    if not state or depth >= 3:
        return cls
    inner = ",".join(f"{k}={_describe(v, depth + 1)}"
                     for k, v in sorted(state.items()))
    return f"{cls}({inner})"


def job_fingerprint(job: Any, splits: Sequence[Any]) -> str:
    """Hash of everything that determines a job's task outputs.

    Two runs with the same fingerprint execute identical task functions
    over identical inputs, so any completed attempt of one is a valid
    completed attempt of the other -- the precondition for adoption.
    """
    parts = [
        f"name={job.name}",
        f"mapper={_describe(job.mapper)}",
        f"reducer={_describe(job.reducer)}",
        f"combiner={_describe(job.combiner)}",
        f"key_serde={_describe(type(job.key_serde))}",
        f"value_serde={_describe(type(job.value_serde))}",
        f"num_reducers={job.num_reducers}",
        f"num_map_tasks={job.num_map_tasks}",
        f"codec={job.codec}",
        f"codec_options={_describe(job.codec_options)}",
        f"partitioner={_describe(job.partitioner)}",
        f"sort_buffer_bytes={job.sort_buffer_bytes}",
        f"merge_factor={job.merge_factor}",
        f"shuffle_plugin={_describe(job.shuffle_plugin)}",
        f"input_variables={_describe(job.input_variables)}",
        f"output_key_serde={_describe(type(job.output_key_serde) if job.output_key_serde is not None else None)}",
        f"output_value_serde={_describe(type(job.output_value_serde) if job.output_value_serde is not None else None)}",
    ]
    for s in splits:
        parts.append(f"split={s.split_id}:{s.variable}:{s.slab!r}")
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class TaskRecord:
    """One completed task checkpoint: who won, where, and file CRCs."""

    task_id: str
    kind: str           # "map" or "reduce"
    attempt: int        # winning attempt number
    attempt_dir: str
    result_path: str    # pickled worker result (counters, profile, output)
    #: every artifact a resume must revalidate: result file + segments
    files: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "task_id": self.task_id,
            "kind": self.kind,
            "attempt": self.attempt,
            "attempt_dir": self.attempt_dir,
            "result_path": self.result_path,
            "files": self.files,
        }

    @classmethod
    def from_json(cls, obj: dict[str, Any]) -> "TaskRecord":
        return cls(
            task_id=obj["task_id"],
            kind=obj["kind"],
            attempt=int(obj["attempt"]),
            attempt_dir=obj["attempt_dir"],
            result_path=obj["result_path"],
            files={str(k): int(v) for k, v in obj["files"].items()},
        )

    def validate(self) -> list[str]:
        """Problems preventing adoption; an empty list means adoptable."""
        problems = []
        for path, expected in sorted(self.files.items()):
            if not os.path.exists(path):
                problems.append(f"missing file {path}")
            elif file_crc32(path) != expected:
                problems.append(f"CRC mismatch for {path}")
        return problems


class JobManifest:
    """The durable record of one job run, committed per state change.

    Every mutating method re-serializes the whole manifest and commits
    it atomically, so a reader (including a resuming runner) always
    observes a complete, internally consistent snapshot -- never a
    half-written one.
    """

    def __init__(self, path: str, job_hash: str) -> None:
        self.path = path
        self.job_hash = job_hash
        #: wave name ("map"/"reduce") -> ordered member task ids
        self.waves: dict[str, list[str]] = {}
        self.tasks: dict[str, TaskRecord] = {}

    # ----------------------------------------------------------- persistence

    def save(self) -> None:
        body = json.dumps({
            "version": MANIFEST_VERSION,
            "job_hash": self.job_hash,
            "waves": self.waves,
            "tasks": {tid: r.to_json() for tid, r in self.tasks.items()},
        }, indent=1, sort_keys=True).encode("utf-8")
        # Self-checksummed envelope: the body CRC distinguishes "no
        # checkpoint" from "checkpoint damaged after commit" (torn disk
        # write, bit rot), which resume reports as manifest corruption
        # instead of silently starting over.
        blob = json.dumps({
            "crc": zlib.crc32(body),
            "body": body.decode("utf-8"),
        }).encode("utf-8")
        atomic_write_bytes(self.path, blob)

    @classmethod
    def load(cls, path: str) -> "JobManifest | None":
        """Read a manifest; ``None`` if absent, unreadable, or stale-schema."""
        manifest, _ = cls.load_verified(path)
        return manifest

    @classmethod
    def load_verified(cls, path: str) -> "tuple[JobManifest | None, str | None]":
        """Read a manifest, reporting *why* it could not be used.

        Returns ``(manifest, None)`` on success, ``(None, None)`` when
        no checkpoint exists (a clean first run), and ``(None, problem)``
        when a checkpoint exists but is truncated, garbage, CRC-damaged,
        or schema-mismatched -- the caller logs ``manifest_corrupt`` and
        falls back to a clean restart instead of crashing resume.
        """
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None, None
        except OSError as exc:
            return None, f"unreadable manifest: {exc}"
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return None, f"manifest parse error: {exc}"
        if (isinstance(envelope, dict) and "crc" in envelope
                and "body" in envelope):
            body = str(envelope["body"]).encode("utf-8")
            try:
                expected = int(envelope["crc"])
            except (TypeError, ValueError):
                return None, "manifest CRC field is not an integer"
            if zlib.crc32(body) != expected:
                return None, (f"manifest CRC mismatch: stored "
                              f"{expected:#010x}, computed "
                              f"{zlib.crc32(body):#010x}")
            try:
                obj = json.loads(body.decode("utf-8"))
            except ValueError as exc:
                return None, f"manifest body parse error: {exc}"
        else:
            # Pre-envelope manifest (no CRC): still readable.
            obj = envelope
        if not isinstance(obj, dict):
            return None, "manifest is not a JSON object"
        if obj.get("version") != MANIFEST_VERSION:
            return None, (f"manifest schema version "
                          f"{obj.get('version')!r} != {MANIFEST_VERSION}")
        try:
            manifest = cls(path, obj["job_hash"])
            manifest.waves = {
                str(w): [str(t) for t in ids]
                for w, ids in obj.get("waves", {}).items()
            }
            manifest.tasks = {
                str(tid): TaskRecord.from_json(rec)
                for tid, rec in obj.get("tasks", {}).items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            return None, f"manifest schema error: {exc!r}"
        return manifest, None

    # -------------------------------------------------------------- mutation

    def record_wave(self, wave: str, task_ids: Sequence[str]) -> None:
        self.waves[wave] = list(task_ids)
        self.save()

    def record_task(self, record: TaskRecord) -> None:
        self.tasks[record.task_id] = record
        self.save()

    # --------------------------------------------------------------- queries

    def adoptable(self, wave: str, expected_ids: Sequence[str]) -> dict[str, TaskRecord]:
        """Validated records for ``wave``, keyed by task id.

        Only ids the *current* job expects in this wave are considered
        (a changed split count invalidates stragglers by omission), and
        every surviving record has passed file existence + CRC checks.
        """
        expected = set(expected_ids)
        adopted: dict[str, TaskRecord] = {}
        for tid in self.waves.get(wave, []):
            record = self.tasks.get(tid)
            if record is None or tid not in expected:
                continue
            if record.validate():  # non-empty problem list: not adoptable
                continue
            adopted[tid] = record
        return adopted

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"JobManifest(hash={self.job_hash[:12]}, "
                f"waves={list(self.waves)}, tasks={len(self.tasks)})")
