"""Deterministic fault injection for the task runtimes.

A :class:`FaultInjector` is a picklable plan mapping ``(task_id,
attempt)`` to one :class:`Fault`.  The plan rides into every worker
process; the worker consults it at well-defined points so tests can
exercise the scheduler's whole failure surface deterministically:

* ``kill``    -- the worker process exits abruptly (no result, no
  traceback), like a machine loss or an OOM kill;
* ``crash``   -- the task raises mid-flight, like a user-code bug that
  happens to be transient;
* ``hang``    -- the task sleeps before doing any work, turning it into
  a straggler for the speculative-execution or task-timeout path;
* ``stall``   -- the worker SIGSTOPs itself: the process stays *alive*
  but every thread (heartbeat included) freezes, which only the
  scheduler's heartbeat-staleness check can detect;
* ``corrupt`` -- a segment file is silently damaged on disk.  By
  default a map task completes *successfully* but one of its output
  segments is bit-flipped (Hadoop's fetch-failure scenario); ``where=
  "reduce-input"`` instead damages one of a reduce task's input
  segments before it runs, and ``offset_frac``/``op`` choose the
  position and kind of damage (flip one byte, truncate, splice);
* ``poison``  -- user code raises deterministically on one input
  record (``record``), the scenario Hadoop's SkipBadRecords exists
  for.  Poison faults are *sticky* by default: retries hit the same
  record, so only skipping mode can get the task past it.
* ``fetch``   -- a shuffle *transfer* fails in flight.  Fetch faults
  are keyed by the ``"<map_id>-><reduce_id>"`` pair instead of a task
  id, ``attempt`` is the fetch-attempt ordinal within one reduce
  attempt, and ``op`` picks the damage: ``drop`` (stream dies
  mid-transfer), ``delay`` (late but intact), ``stall`` (stream hangs
  until the fetch deadline), ``truncate`` (short transfer), ``flip``
  (bit-flip in flight).  ``epoch`` scopes the fault to one segment
  generation: a sticky epoch-0 fault makes a segment *permanently*
  unfetchable until the scheduler re-executes the producing map --
  whose epoch-1 replacement then fetches cleanly.

Non-sticky faults target a specific attempt (default: the first), so
the retried attempt runs clean and the job completes -- which is
exactly what the robustness tests assert.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace as dc_replace
from typing import Any

from repro.mapreduce.api import MapContext, Mapper, ReduceContext, Reducer

__all__ = [
    "Fault",
    "FaultInjector",
    "PoisonRecordError",
    "PoisonedMapper",
    "PoisonedReducer",
    "poisoned_job",
    "corrupt_file",
    "fetch_pair_id",
    "FETCH_OPS",
    "HOST_MODES",
    "DISK_OPS",
    "OOM_SITES",
    "OOM_OPS",
    "host_fault_id",
]

MODES = ("kill", "crash", "hang", "corrupt", "stall", "poison", "fetch",
         "host_crash", "host_partition", "disk_fault", "oom")
#: host-level failure domains (keyed by host name, not task id)
HOST_MODES = ("host_crash", "host_partition", "disk_fault")
#: memory-ledger sites an ``oom`` fault can target (``where``): the map
#: sort buffer, the reduce fetch window, or the reduce-side merge
OOM_SITES = ("sort", "fetch", "merge")
#: how an ``oom`` fault fires: ``raise`` (simulated ``MemoryError`` at
#: the site's next ledger charge), ``kill`` (SIGKILL-style worker death
#: when the site's charged bytes cross ``record`` -- the kernel OOM
#: killer), ``alloc`` (really allocate ``record`` bytes, for a genuine
#: ``MemoryError`` under ``RLIMIT_AS``)
OOM_OPS = ("raise", "kill", "alloc")
#: which file a ``corrupt`` fault damages
CORRUPT_WHERE = ("map-output", "reduce-input")
#: how a ``corrupt`` fault damages it
CORRUPT_OPS = ("flip", "truncate", "splice")
#: how a ``fetch`` fault damages a shuffle transfer in flight
FETCH_OPS = ("drop", "delay", "stall", "truncate", "flip")
#: which errno a ``disk_fault`` raises from the failing workdir
DISK_OPS = ("enospc", "eio")


def fetch_pair_id(map_id: str, reduce_id: str) -> str:
    """The plan key for a fetch fault on one (map, reduce) link."""
    return f"{map_id}->{reduce_id}"


def host_fault_id(host: str) -> str:
    """The plan key for a host-level fault (``host_crash`` etc.)."""
    return f"@{host}"


class PoisonRecordError(RuntimeError):
    """The deterministic user-code failure a ``poison`` fault injects."""


@dataclass(frozen=True)
class Fault:
    """One injected failure, bound to a task attempt."""

    mode: str
    attempt: int = 0
    #: sleep length for ``hang`` faults
    seconds: float = 30.0
    #: process exit status for ``kill`` faults
    exit_code: int = 13
    #: target record for ``poison`` faults: a flat input cell index for
    #: map tasks, a reduce-group ordinal for reduce tasks
    record: int = 0
    #: apply on every attempt >= ``attempt`` (None = mode default:
    #: sticky for ``poison``, one-shot for everything else)
    sticky: bool | None = None
    #: ``corrupt`` target file: a map task's output segment or a reduce
    #: task's input segment
    where: str = "map-output"
    #: ``corrupt`` segment selector: the partition (map-output) or the
    #: input index (reduce-input); None = the first one
    segment: int | None = None
    #: ``corrupt`` damage position as a fraction of the file size
    offset_frac: float = 0.5
    #: ``corrupt`` damage kind (flip / truncate / splice) or ``fetch``
    #: damage kind (drop / delay / stall / truncate / flip)
    op: str = "flip"
    #: ``fetch`` only: the segment generation the fault applies to
    #: (``None`` = every generation, surviving even map re-execution)
    epoch: int | None = 0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; have {MODES}")
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        if self.record < 0:
            raise ValueError(f"record must be >= 0, got {self.record}")
        if self.mode == "oom":
            if self.where not in OOM_SITES:
                raise ValueError(
                    f"unknown oom site {self.where!r}; have {OOM_SITES}")
        elif self.where not in CORRUPT_WHERE:
            raise ValueError(
                f"unknown corrupt target {self.where!r}; have {CORRUPT_WHERE}")
        if self.mode == "fetch":
            ops = FETCH_OPS
        elif self.mode == "disk_fault":
            ops = DISK_OPS
        elif self.mode == "oom":
            ops = OOM_OPS
        elif self.mode in ("host_crash", "host_partition"):
            ops = ("flip",)  # op unused for these modes; default passes
        else:
            ops = CORRUPT_OPS
        if self.op not in ops:
            raise ValueError(
                f"unknown {self.mode} op {self.op!r}; have {ops}")
        if not 0.0 <= self.offset_frac <= 1.0:
            raise ValueError(
                f"offset_frac must be in [0, 1], got {self.offset_frac}")
        if self.epoch is not None and self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")
        if self.sticky is None:
            object.__setattr__(self, "sticky", self.mode == "poison")


class FaultInjector:
    """A plan of faults keyed by task id and attempt number."""

    def __init__(self) -> None:
        self._plan: dict[tuple[str, int], Fault] = {}

    # Builder-style helpers; all return self for chaining.

    def add(self, task_id: str, fault: Fault) -> "FaultInjector":
        key = (task_id, fault.attempt)
        if key in self._plan:
            raise ValueError(f"duplicate fault for {task_id} attempt {fault.attempt}")
        self._plan[key] = fault
        return self

    def kill(self, task_id: str, attempt: int = 0,
             exit_code: int = 13) -> "FaultInjector":
        return self.add(task_id, Fault("kill", attempt, exit_code=exit_code))

    def crash(self, task_id: str, attempt: int = 0) -> "FaultInjector":
        return self.add(task_id, Fault("crash", attempt))

    def hang(self, task_id: str, seconds: float,
             attempt: int = 0) -> "FaultInjector":
        return self.add(task_id, Fault("hang", attempt, seconds=seconds))

    def corrupt(self, task_id: str, attempt: int = 0, *,
                where: str = "map-output", segment: int | None = None,
                offset_frac: float = 0.5, op: str = "flip") -> "FaultInjector":
        """Plan silent disk damage: a map output (default) or, with
        ``where="reduce-input"``, one of a reduce task's inputs."""
        return self.add(task_id, Fault(
            "corrupt", attempt, where=where, segment=segment,
            offset_frac=offset_frac, op=op))

    def stall(self, task_id: str, attempt: int = 0) -> "FaultInjector":
        return self.add(task_id, Fault("stall", attempt))

    def poison(self, task_id: str, record: int,
               attempt: int = 0) -> "FaultInjector":
        """Plan a deterministic user-code failure on one input record."""
        return self.add(task_id, Fault("poison", attempt, record=record))

    def fetch(self, map_id: str, reduce_id: str, *, op: str = "flip",
              attempt: int = 0, sticky: bool = False,
              seconds: float = 30.0, offset_frac: float = 0.5,
              epoch: int | None = 0) -> "FaultInjector":
        """Plan an in-flight shuffle transfer failure on one link.

        ``attempt`` is the fetch-attempt ordinal within a reduce attempt
        (0 = the first try); a *sticky* fault hits every fetch attempt
        from that ordinal on, within the scoped ``epoch`` -- the
        "permanently unfetchable segment" that must escalate to map
        re-execution rather than fail the job.
        """
        return self.add(fetch_pair_id(map_id, reduce_id), Fault(
            "fetch", attempt, sticky=sticky, seconds=seconds,
            offset_frac=offset_frac, op=op, epoch=epoch))

    def host_crash(self, host: str) -> "FaultInjector":
        """Plan a whole-host loss: every worker on ``host`` is killed
        and its segment server (plus every committed segment copy it
        held) dies with it.  Applied at the shuffle barrier, the point
        where Hadoop's lost-tasktracker handling kicks in."""
        return self.add(host_fault_id(host), Fault("host_crash"))

    def host_partition(self, host: str, *, drops: int = 2,
                       seconds: float = 30.0) -> "FaultInjector":
        """Plan a network partition: every shuffle link out of ``host``
        loses its first ``drops`` fetch attempts while its workers keep
        heartbeating, so the health monitor must *not* declare it dead.

        The runners expand this into deterministic per-link ``drop``
        fetch faults (see :func:`~repro.mapreduce.runtime.hosts.
        expand_host_partition`), clamped to the transport's retry budget
        so the partition heals in-attempt; ``drops`` rides in the
        fault's ``record`` field.  ``seconds`` sizes the wall-clock
        blackhole for the live ``ShuffleService.partition_server`` hook
        (unit tests only -- wall-clock windows cannot give
        runner-identical retry counts).
        """
        return self.add(host_fault_id(host),
                        Fault("host_partition", record=drops,
                              seconds=seconds))

    def oom(self, task_id: str, *, site: str = "sort", op: str = "raise",
            attempt: int = 0, nbytes: int = 0,
            sticky: bool = False) -> "FaultInjector":
        """Plan an out-of-memory failure at one ledger site.

        ``op="raise"`` injects a simulated ``MemoryError`` at ``site``'s
        next charge; ``op="kill"`` dies SIGKILL-style the moment the
        site's charged bytes cross ``nbytes`` (sticky, this models a
        kernel OOM killer that only backpressure can appease);
        ``op="alloc"`` really allocates ``nbytes`` at the site, which
        under ``RLIMIT_AS`` raises a *genuine* ``MemoryError``.  The
        runners' degrade ladder answers all three by retrying with
        halved memory knobs.
        """
        return self.add(task_id, Fault(
            "oom", attempt, where=site, op=op, record=nbytes,
            sticky=sticky))

    def disk_fault(self, host: str, *, op: str = "enospc") -> "FaultInjector":
        """Plan a workdir disk failure on ``host``: spill/commit writes
        raise ENOSPC/EIO, forcing failover to a secondary workdir and
        quarantine of the bad one."""
        return self.add(host_fault_id(host), Fault("disk_fault", op=op))

    def host_plan(self) -> dict[str, Fault]:
        """Every planned host-level fault, keyed by host name.

        Plain picklable data, consumed by the runners at the shuffle
        barrier and by the scheduler when launching workers.
        """
        plan: dict[str, Fault] = {}
        for (tid, _), fault in sorted(self._plan.items()):
            if fault.mode in HOST_MODES and tid.startswith("@"):
                plan[tid[1:]] = fault
        return plan

    def fetch_plan_for(self, reduce_id: str) -> dict[str, tuple[Fault, ...]]:
        """Every fetch fault aimed at one reduce task, keyed by map id.

        The returned mapping is plain data (picklable), so it can ride
        into the reduce worker process the way task faults do.
        """
        suffix = f"->{reduce_id}"
        plan: dict[str, list[Fault]] = {}
        for (tid, _), fault in sorted(self._plan.items()):
            if fault.mode == "fetch" and tid.endswith(suffix):
                map_id = tid[:-len(suffix)]
                plan.setdefault(map_id, []).append(fault)
        return {m: tuple(fs) for m, fs in plan.items()}

    def fetch_plan(self) -> dict[str, tuple[Fault, ...]]:
        """Every planned fetch fault, keyed by ``"<map>-><reduce>"`` pair.

        The network shuffle service applies wire faults *server-side*
        (the damage happens on a live socket, not in the client), so it
        needs the whole plan rather than one reduce task's slice.
        """
        plan: dict[str, list[Fault]] = {}
        for (tid, _), fault in sorted(self._plan.items()):
            if fault.mode == "fetch":
                plan.setdefault(tid, []).append(fault)
        return {k: tuple(fs) for k, fs in plan.items()}

    def has(self, task_id: str, attempt: int) -> bool:
        """Whether an exact ``(task_id, attempt)`` entry is planned."""
        return (task_id, attempt) in self._plan

    def fault_for(self, task_id: str, attempt: int) -> Fault | None:
        """The fault planned for this attempt, if any.

        An exact ``(task_id, attempt)`` entry wins; otherwise the most
        recently anchored *sticky* fault with ``fault.attempt <=
        attempt`` applies -- a poison record does not go away because
        the task was retried.
        """
        exact = self._plan.get((task_id, attempt))
        if exact is not None:
            return exact
        best: Fault | None = None
        for (tid, anchor), fault in self._plan.items():
            if tid != task_id or not fault.sticky or anchor > attempt:
                continue
            if best is None or anchor > best.attempt:
                best = fault
        return best

    def __len__(self) -> int:
        return len(self._plan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows = ", ".join(
            f"{tid}.{att}={f.mode}" for (tid, att), f in sorted(self._plan.items())
        )
        return f"FaultInjector({rows})"


def corrupt_file(path: str, offset_frac: float = 0.5, op: str = "flip") -> None:
    """Damage ``path`` in place the way a ``corrupt`` fault specifies.

    ``flip`` XORs one byte at ``offset_frac`` of the file, ``truncate``
    cuts the file there, ``splice`` swaps two 8-byte windows (simulating
    a misdirected write).  A splice whose windows carry identical bytes
    would be a no-op, so it falls back to a flip -- injected corruption
    must actually corrupt.
    """
    size = os.path.getsize(path)
    if size == 0:
        return
    offset = min(size - 1, int(size * offset_frac))
    if op == "truncate":
        os.truncate(path, offset)
        return
    if op == "splice":
        a, b = offset // 2, offset
        width = min(8, size - b, b - a)
        if width > 0:
            with open(path, "r+b") as fh:
                fh.seek(a)
                first = fh.read(width)
                fh.seek(b)
                second = fh.read(width)
                if first != second:
                    fh.seek(a)
                    fh.write(second)
                    fh.seek(b)
                    fh.write(first)
                    return
        # degenerate window (tiny file or identical bytes): flip instead
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


class PoisonedMapper(Mapper):
    """Wraps a job's mapper so one input record raises (``poison``).

    The poison record is a flat (row-major) cell index into the split's
    slab.  :meth:`map` raises before emitting anything when the record
    is in range; :meth:`map_range` raises only when the range covers the
    record, so skipping mode can bisect down to it.
    """

    def __init__(self, inner: Mapper, record: int) -> None:
        self.inner = inner
        self.record = record
        self.wants_dataset = getattr(inner, "wants_dataset", False)

    @property
    def dataset(self) -> Any:
        """The input dataset, forwarded to the wrapped mapper."""
        return self.inner.dataset

    @dataset.setter
    def dataset(self, value: Any) -> None:
        self.inner.dataset = value

    def setup(self, split) -> None:
        self.inner.setup(split)

    def map(self, split, values, ctx: MapContext) -> None:
        if 0 <= self.record < values.size:
            raise PoisonRecordError(
                f"injected poison record {self.record} in split "
                f"{split.split_id}")
        self.inner.map(split, values, ctx)

    def map_range(self, split, values, ctx: MapContext,
                  start: int, stop: int) -> None:
        if start <= self.record < stop:
            raise PoisonRecordError(
                f"injected poison record {self.record} in split "
                f"{split.split_id}")
        self.inner.map_range(split, values, ctx, start, stop)

    def cleanup(self, ctx: MapContext) -> None:
        self.inner.cleanup(ctx)


class PoisonedReducer(Reducer):
    """Wraps a job's reducer so one key group raises (``poison``).

    The poison record is the zero-based ordinal of the key group within
    the reduce task's sorted input.
    """

    def __init__(self, inner: Reducer, record: int) -> None:
        self.inner = inner
        self.record = record
        self._ordinal = -1

    def reduce(self, key, values, ctx: ReduceContext) -> None:
        self._ordinal += 1
        if self._ordinal == self.record:
            raise PoisonRecordError(
                f"injected poison at reduce group {self.record} "
                f"(key {key!r})")
        self.inner.reduce(key, values, ctx)


def poisoned_job(job: Any, fault: Fault, kind: str) -> Any:
    """A copy of ``job`` whose mapper or reducer factory injects
    ``fault``'s poison record.

    Built *inside* the process that runs the task (the factory closure
    is not picklable, and does not need to be).
    """
    if kind == "map":
        base = job.mapper
        return dc_replace(
            job, mapper=lambda: PoisonedMapper(base(), fault.record))
    if kind == "reduce":
        base_r = job.reducer
        return dc_replace(
            job, reducer=lambda: PoisonedReducer(base_r(), fault.record))
    raise ValueError(f"unknown task kind {kind!r}")
