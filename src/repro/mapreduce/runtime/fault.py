"""Deterministic fault injection for the parallel task runtime.

A :class:`FaultInjector` is a picklable plan mapping ``(task_id,
attempt)`` to one :class:`Fault`.  The plan rides into every worker
process; the worker consults it at well-defined points so tests can
exercise the scheduler's whole failure surface deterministically:

* ``kill``    -- the worker process exits abruptly (no result, no
  traceback), like a machine loss or an OOM kill;
* ``crash``   -- the task raises mid-flight, like a user-code bug that
  happens to be transient;
* ``hang``    -- the task sleeps before doing any work, turning it into
  a straggler for the speculative-execution or task-timeout path;
* ``stall``   -- the worker SIGSTOPs itself: the process stays *alive*
  but every thread (heartbeat included) freezes, which only the
  scheduler's heartbeat-staleness check can detect;
* ``corrupt`` -- a map task completes *successfully* but one of its
  output segments is silently bit-flipped on disk, which only surfaces
  when a reducer fails the segment checksum (Hadoop's fetch-failure
  scenario).

Faults target a specific attempt (default: the first), so the retried
attempt runs clean and the job completes -- which is exactly what the
robustness tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Fault", "FaultInjector"]

MODES = ("kill", "crash", "hang", "corrupt", "stall")


@dataclass(frozen=True)
class Fault:
    """One injected failure, bound to a task attempt."""

    mode: str
    attempt: int = 0
    #: sleep length for ``hang`` faults
    seconds: float = 30.0
    #: process exit status for ``kill`` faults
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; have {MODES}")
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


class FaultInjector:
    """A plan of faults keyed by task id and attempt number."""

    def __init__(self) -> None:
        self._plan: dict[tuple[str, int], Fault] = {}

    # Builder-style helpers; all return self for chaining.

    def add(self, task_id: str, fault: Fault) -> "FaultInjector":
        key = (task_id, fault.attempt)
        if key in self._plan:
            raise ValueError(f"duplicate fault for {task_id} attempt {fault.attempt}")
        self._plan[key] = fault
        return self

    def kill(self, task_id: str, attempt: int = 0,
             exit_code: int = 13) -> "FaultInjector":
        return self.add(task_id, Fault("kill", attempt, exit_code=exit_code))

    def crash(self, task_id: str, attempt: int = 0) -> "FaultInjector":
        return self.add(task_id, Fault("crash", attempt))

    def hang(self, task_id: str, seconds: float,
             attempt: int = 0) -> "FaultInjector":
        return self.add(task_id, Fault("hang", attempt, seconds=seconds))

    def corrupt(self, task_id: str, attempt: int = 0) -> "FaultInjector":
        return self.add(task_id, Fault("corrupt", attempt))

    def stall(self, task_id: str, attempt: int = 0) -> "FaultInjector":
        return self.add(task_id, Fault("stall", attempt))

    def fault_for(self, task_id: str, attempt: int) -> Fault | None:
        """The fault planned for this attempt, if any."""
        return self._plan.get((task_id, attempt))

    def __len__(self) -> int:
        return len(self._plan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows = ", ".join(
            f"{tid}.{att}={f.mode}" for (tid, att), f in sorted(self._plan.items())
        )
        return f"FaultInjector({rows})"
