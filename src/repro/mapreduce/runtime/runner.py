"""Multiprocess drop-in replacement for the serial job runner.

``ParallelJobRunner.run(job, dataset, splits)`` has the same signature
and returns the same :class:`~repro.mapreduce.engine.JobResult` as
:class:`~repro.mapreduce.engine.LocalJobRunner.run` -- with
byte-identical :class:`~repro.mapreduce.metrics.Counters`, because both
runners execute the *same* top-level task functions over the *same*
IFile/codec data path; only the execution vehicle changes (a
:class:`~repro.mapreduce.runtime.scheduler.TaskScheduler` driving
worker processes over segments on shared disk, instead of a loop).

The job DAG is two waves with a shuffle barrier: every map task runs
first, writing one final IFile segment per reducer partition into its
attempt directory; reduce tasks then receive their partition's segment
*paths* and fetch the bytes themselves.  Retries, speculative
execution, attempt deadlines, and corrupt-segment repair are the
scheduler's department; the resulting
:class:`~repro.mapreduce.runtime.trace.RuntimeTrace` is attached to the
job result as ``result.trace``.

**Durable recovery.**  With ``recovery_dir`` set, the runner executes
inside that directory instead of a throwaway temp dir and maintains a
:class:`~repro.mapreduce.runtime.recovery.JobManifest` there: the job
fingerprint, wave membership, and a checkpoint record (attempt dir,
result file, per-file CRC32s) for every completed task, each committed
atomically.  If the runner process dies mid-job, constructing the next
runner with the same ``recovery_dir`` and ``resume=True`` validates
the manifest and **adopts** every intact completed task -- the job
restarts from the last durable state transition instead of from
scratch.  Counters and output of a resumed run are byte-identical to
an uninterrupted one (the chaos soak harness pins this down).
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import threading
from typing import Any, Sequence

from repro.mapreduce.engine import (
    JobResult,
    MapTaskOutput,
    run_map_task,
)
from repro.mapreduce.ifile import IFileStats
from repro.mapreduce.job import Job
from repro.mapreduce.metrics import C, Counters, TaskProfile
from repro.mapreduce.runtime.fault import FaultInjector
from repro.mapreduce.runtime.hosts import (
    HostHealthMonitor,
    HostRegistry,
    expand_host_partition,
)
from repro.mapreduce.runtime.pipeline import (
    COMMITS_DIRNAME,
    CommitLog,
    CommitRecord,
    PipelinePlan,
    aggregate_pipeline_stats,
)
from repro.mapreduce.runtime.recovery import (
    MANIFEST_NAME,
    JobManifest,
    TaskRecord,
    file_crc32,
    job_fingerprint,
)
from repro.mapreduce.runtime.pool import WorkerPool
from repro.mapreduce.runtime.scheduler import TaskScheduler, TaskSpec
from repro.mapreduce.runtime.shuffle import SegmentRef, ShuffleConfig
from repro.mapreduce.runtime.trace import RuntimeTrace
from repro.mapreduce.runtime.worker import load_result
from repro.scidata.dataset import Dataset
from repro.scidata.splits import ArraySplitter, InputSplit

__all__ = ["ParallelJobRunner"]


class ParallelJobRunner:
    """Run jobs on a bounded pool of worker processes.

    Constructor keywords mirror :class:`TaskScheduler`'s knobs; runner
    lifecycle (workdir ownership, ``keep_files``, context-manager
    cleanup) mirrors :class:`~repro.mapreduce.engine.LocalJobRunner`.

    ``recovery_dir`` enables durable checkpointing there; ``resume``
    additionally adopts any valid completed work a previous (killed)
    run left in that directory.  ``resume=True`` requires
    ``recovery_dir``.

    ``pool``/``tenant`` borrow worker slots from a shared
    :class:`~repro.mapreduce.runtime.pool.WorkerPool` (the job
    service's warm pool) instead of owning a private one;
    ``cancel_event`` aborts the run cooperatively -- every in-flight
    worker is killed, segment servers stop, and a recovery-enabled
    run leaves its manifest behind for a later ``resume=True``.
    ``run()`` also wires SIGTERM/SIGINT to that event when called on
    the main thread, so a terminated standalone run drains cleanly
    instead of leaking children.
    """

    def __init__(
        self,
        workdir: str | None = None,
        keep_files: bool = False,
        *,
        max_workers: int | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 2.0,
        fetch_failure_threshold: int = 2,
        max_map_reexecs: int = 2,
        shuffle: ShuffleConfig | None = None,
        speculation: bool = True,
        straggler_factor: float = 3.0,
        min_straggler_seconds: float = 1.0,
        speculation_min_completed: int = 2,
        task_timeout: float | None = None,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float | None = None,
        wave_deadline: float | None = None,
        recovery_dir: str | None = None,
        resume: bool = False,
        start_method: str | None = None,
        pool: WorkerPool | None = None,
        tenant: str = "default",
        cancel_event: threading.Event | None = None,
        fault_injector: FaultInjector | None = None,
        num_hosts: int = 2,
        max_host_reexecs: int = 2,
        worker_rlimit_bytes: int | None = None,
    ) -> None:
        if resume and recovery_dir is None:
            raise ValueError("resume=True requires recovery_dir")
        if num_hosts < 1:
            raise ValueError(f"num_hosts must be >= 1, got {num_hosts}")
        if max_host_reexecs < 0:
            raise ValueError(
                f"max_host_reexecs must be >= 0, got {max_host_reexecs}")
        self.num_hosts = num_hosts
        self.max_host_reexecs = max_host_reexecs
        self._own_workdir = workdir is None
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-mrp-")
        self.keep_files = keep_files
        os.makedirs(self.workdir, exist_ok=True)
        self.max_workers = max_workers
        self.recovery_dir = recovery_dir
        self.resume = resume
        self.pool = pool
        self.tenant = tenant
        self.cancel_event = (cancel_event if cancel_event is not None
                             else threading.Event())
        self._scheduler_kwargs = dict(
            max_workers=max_workers,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            retry_backoff_max=retry_backoff_max,
            fetch_failure_threshold=fetch_failure_threshold,
            max_map_reexecs=max_map_reexecs,
            shuffle=shuffle,
            speculation=speculation,
            straggler_factor=straggler_factor,
            min_straggler_seconds=min_straggler_seconds,
            speculation_min_completed=speculation_min_completed,
            task_timeout=task_timeout,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            wave_deadline=wave_deadline,
            start_method=start_method,
            pool=pool,
            tenant=tenant,
            fault_injector=fault_injector,
            worker_rlimit_bytes=worker_rlimit_bytes,
        )
        #: trace of the most recent run (also on ``JobResult.trace``)
        self.last_trace: RuntimeTrace | None = None
        #: tasks adopted from the manifest in the most recent run
        self.last_adopted: int = 0
        #: completed maps re-executed for fetch failures, most recent run
        self.last_map_reexecs: int = 0
        #: host health monitor of the most recent run
        self.last_hosts: HostHealthMonitor | None = None

    def __enter__(self) -> "ParallelJobRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Remove an owned workdir (no-op for caller-supplied dirs)."""
        if self._own_workdir and os.path.isdir(self.workdir):
            shutil.rmtree(self.workdir, ignore_errors=True)

    def cancel(self) -> None:
        """Abort the in-flight run cooperatively (thread-safe).

        The scheduler's poll loop observes the event, kills every
        worker, and raises :class:`~repro.mapreduce.runtime.scheduler.
        JobCancelledError`; a recovery-enabled run keeps its manifest
        so ``resume=True`` continues from the interrupt.
        """
        self.cancel_event.set()

    # ------------------------------------------------------------------ run

    def run(
        self,
        job: Job,
        dataset: Dataset,
        splits: Sequence[InputSplit] | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``dataset``; returns outputs and metrics."""
        os.makedirs(self.workdir, exist_ok=True)
        if splits is None:
            variables = (list(job.input_variables)
                         if job.input_variables is not None else None)
            splits = ArraySplitter(job.num_map_tasks).split(dataset, variables)
        if not splits:
            raise ValueError("job has no input splits")

        trace = RuntimeTrace()
        monitor = HostHealthMonitor(
            HostRegistry(self.num_hosts), trace=trace,
            max_host_reexecs=self.max_host_reexecs)
        self.last_hosts = monitor
        scheduler = TaskScheduler(trace=trace, hosts=monitor,
                                  cancel_event=self.cancel_event,
                                  **self._scheduler_kwargs)
        self.last_adopted = 0
        self.last_map_reexecs = 0
        # Same dict object the scheduler mutates: _assemble_result reads
        # it after the waves without re-plumbing every call path.
        self._memory_tally = scheduler.memory_tally

        # Graceful termination: SIGTERM/SIGINT set the cancel event so
        # the scheduler drains (kills workers, stops segment servers via
        # the wave's ``finally``) and the manifest survives for resume.
        # Signal handlers only work on the main thread; service executor
        # threads use per-job cancel events instead.
        previous_handlers: dict[int, Any] = {}
        if threading.current_thread() is threading.main_thread():
            def _on_signal(signum: int, frame: Any) -> None:
                self.cancel_event.set()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous_handlers[sig] = signal.signal(sig, _on_signal)
                except (ValueError, OSError):  # pragma: no cover
                    pass

        if self.recovery_dir is None:
            run_dir = tempfile.mkdtemp(prefix="run-", dir=self.workdir)
            manifest, adopted = None, {}
        else:
            run_dir = self.recovery_dir
            manifest, adopted = self._open_manifest(job, splits, run_dir,
                                                    trace)

        completed = False
        try:
            result = self._run_waves(job, dataset, splits, scheduler,
                                     trace, run_dir, manifest, adopted,
                                     monitor)
            completed = True
        finally:
            # A failed recovery run keeps its directory: the manifest and
            # checkpoints *are* the resume state.  A completed one is
            # emptied (the caller-supplied directory itself survives,
            # like a caller-supplied workdir).
            if not self.keep_files:
                if self.recovery_dir is None:
                    shutil.rmtree(run_dir, ignore_errors=True)
                elif completed:
                    self._clear_stale_attempts(run_dir)
                    try:
                        os.unlink(os.path.join(run_dir, MANIFEST_NAME))
                    except OSError:  # pragma: no cover - already gone
                        pass
            if (self._own_workdir and os.path.isdir(self.workdir)
                    and not os.listdir(self.workdir)):
                shutil.rmtree(self.workdir, ignore_errors=True)
            for sig, handler in previous_handlers.items():
                try:
                    signal.signal(sig, handler)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        self.last_trace = trace
        return result

    # ------------------------------------------------------------- recovery

    def _open_manifest(
        self,
        job: Job,
        splits: Sequence[InputSplit],
        run_dir: str,
        trace: RuntimeTrace | None = None,
    ) -> tuple[JobManifest, dict[str, TaskRecord]]:
        """Create or adopt the manifest for a recovery-enabled run.

        Returns the live manifest plus the validated records of a prior
        run (empty unless ``resume=True`` and the on-disk manifest
        matches this job's fingerprint).  A corrupt or truncated
        manifest is *not* an error: it is traced as ``manifest_corrupt``
        and the run falls back to a clean restart, clearing the stale
        checkpoints it can no longer vouch for.
        """
        os.makedirs(run_dir, exist_ok=True)
        fingerprint = job_fingerprint(job, splits)
        path = os.path.join(run_dir, MANIFEST_NAME)
        previous = None
        if self.resume:
            previous, problem = JobManifest.load_verified(path)
            if problem is not None:
                if trace is not None:
                    trace.record("manifest", 0, "job", "manifest_corrupt",
                                 problem)
                # The checkpoints may be fine, but without a trustworthy
                # manifest nothing vouches for them: clean restart.
                self._clear_stale_attempts(run_dir)
        if previous is not None and previous.job_hash != fingerprint:
            previous = None  # different job: nothing is adoptable

        manifest = JobManifest(path, fingerprint)
        adopted: dict[str, TaskRecord] = {}
        if previous is not None:
            map_ids = previous.waves.get("map", [])
            adopted.update(previous.adoptable("map", map_ids))
            reduce_ids = previous.waves.get("reduce", [])
            adopted.update(previous.adoptable("reduce", reduce_ids))
            # Carry the validated records into the fresh manifest so a
            # second interruption still sees them.
            for record in adopted.values():
                manifest.tasks[record.task_id] = record
        if not self.resume:
            # A deliberate fresh start invalidates any stale checkpoints.
            self._clear_stale_attempts(run_dir)
        manifest.save()
        return manifest, adopted

    @staticmethod
    def _clear_stale_attempts(run_dir: str) -> None:
        for name in os.listdir(run_dir):
            path = os.path.join(run_dir, name)
            if os.path.isdir(path):
                shutil.rmtree(path, ignore_errors=True)
            elif name != MANIFEST_NAME:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - already gone
                    pass

    @staticmethod
    def _load_adopted(records: dict[str, TaskRecord],
                      kind: str) -> dict[str, Any]:
        """Reload checkpointed task values for one wave.

        Records already passed CRC validation; a result that still fails
        to load (e.g. deleted between validation and here) is simply
        dropped so the scheduler re-runs the task.
        """
        values: dict[str, Any] = {}
        for task_id, record in records.items():
            if record.kind != kind:
                continue
            result = load_result(record.result_path)
            if result is not None and result.get("status") == "ok":
                values[task_id] = result["value"]
        return values

    @staticmethod
    def _checkpoint(manifest: JobManifest, spec: TaskSpec, attempt: int,
                    attempt_dir: str, result_path: str, value: Any) -> None:
        """Record one freshly completed task in the manifest."""
        files = {result_path: file_crc32(result_path)}
        if spec.kind == "map":
            for path, _ in value.segments.values():
                files[path] = file_crc32(path)
        manifest.record_task(TaskRecord(
            task_id=spec.task_id,
            kind=spec.kind,
            attempt=attempt,
            attempt_dir=attempt_dir,
            result_path=result_path,
            files=files,
        ))

    # ---------------------------------------------------------------- waves

    def _run_waves(
        self,
        job: Job,
        dataset: Dataset,
        splits: Sequence[InputSplit],
        scheduler: TaskScheduler,
        trace: RuntimeTrace,
        run_dir: str,
        manifest: JobManifest | None,
        adopted: dict[str, TaskRecord],
        monitor: HostHealthMonitor,
    ) -> JobResult:
        recovering = manifest is not None

        # Host faults.  Partitions are expanded into deterministic
        # per-link fetch drops *before* anything snapshots the fetch
        # plan (the network shuffle service copies it at startup), with
        # exactly the serial runner's clamp so retry counts match
        # byte-for-byte.
        injector = self._scheduler_kwargs.get("fault_injector")
        shuffle_cfg = self._scheduler_kwargs.get("shuffle")
        host_plan = (injector.host_plan()
                     if injector is not None
                     and hasattr(injector, "host_plan") else {})
        map_ids = [f"m{s.split_id:05d}" for s in splits]
        reduce_ids = [f"r{part:05d}" for part in range(job.num_reducers)]
        retries = (getattr(shuffle_cfg, "fetch_retries", 3)
                   if shuffle_cfg is not None else 3)
        for host, fault in sorted(host_plan.items()):
            if fault.mode == "host_partition":
                drops = min(max(1, fault.record), retries)
                expand_host_partition(injector, host, map_ids, reduce_ids,
                                      self.num_hosts, drops)

        # Pipelined shuffle: one combined wave instead of two barriered
        # ones.  All the barrier-only machinery below (eager segment-ref
        # payloads, barrier-time host crashes) is replaced by the commit
        # log as the completion-event stream.
        if shuffle_cfg is not None and getattr(shuffle_cfg, "pipeline",
                                               False):
            return self._run_pipelined(
                job, dataset, splits, scheduler, trace, run_dir,
                manifest, adopted, monitor, injector, shuffle_cfg,
                host_plan)

        def on_complete(spec, attempt, attempt_dir, result_path, value):
            self._checkpoint(manifest, spec, attempt, attempt_dir,
                             result_path, value)

        wave_kwargs: dict[str, Any] = {}
        if recovering:
            wave_kwargs = dict(on_complete=on_complete,
                               keep_result_files=True)

        # Wave 1: map tasks.
        map_specs = [TaskSpec(f"m{s.split_id:05d}", "map", s) for s in splits]
        if recovering:
            manifest.record_wave("map", [s.task_id for s in map_specs])
        adopted_maps = self._load_adopted(adopted, "map")
        self.last_adopted += len(adopted_maps)
        map_results: dict[str, MapTaskOutput] = scheduler.run_wave(
            map_specs, job, dataset, run_dir,
            precomputed=adopted_maps, **wave_kwargs)

        # Shuffle barrier: hand each reducer its partition's segment
        # references, in map-task order (matching the serial runner
        # exactly).  ``epoch`` tracks per-map re-executions so a fetch
        # fault pinned to epoch 0 stops matching the replacement bytes.
        reexec_epochs: dict[str, int] = {s.task_id: 0 for s in map_specs}

        # Network transport: start the per-worker segment servers in
        # the scheduler process and publish every committed map output.
        # Reduce workers then fetch over real loopback sockets; the
        # service dies with the reduce wave.
        service = None
        if (shuffle_cfg is not None
                and getattr(shuffle_cfg, "transport", "") == "network"):
            from repro.mapreduce.runtime.netshuffle import ShuffleService
            service = ShuffleService.from_config(
                shuffle_cfg,
                faults=(injector.fetch_plan() if injector is not None
                        else None),
                trace=trace)
            service.start()
            for task_id, mo in map_results.items():
                service.register_map_output(
                    task_id, [path for path, _ in mo.segments.values()],
                    epoch=0)

        def reduce_payload(part: int) -> tuple[int, list[SegmentRef]]:
            refs = []
            for spec in map_specs:
                path, stats = map_results[spec.task_id].segments[part]
                refs.append(SegmentRef(
                    map_id=spec.task_id, path=path, stats=stats,
                    epoch=reexec_epochs[spec.task_id],
                    address=(service.address_for(spec.task_id)
                             if service is not None else None)))
            return (part, refs)

        def rerun_map(map_id: str, charge: bool = True) -> None:
            """Re-run one completed map into a fresh epoch directory.

            Runs inline in the scheduler process (like segment repair,
            so the fault plan that broke the segments cannot re-break
            the replacement).  The old paths are deleted, so a
            straggling reader fails fast rather than reading
            half-invalidated bytes.  ``charge`` feeds the ordinary
            fetch-failure re-execution counter; host-crash re-runs are
            charged separately through the health monitor.
            """
            spec = next(s for s in map_specs if s.task_id == map_id)
            if service is not None:
                # Graceful drain: in-flight requests for the doomed
                # epoch get STALE_EPOCH (a transient) instead of racing
                # half-deleted files.
                service.invalidate(map_id)
            reexec_epochs[map_id] += 1
            old = map_results[map_id]
            fresh_dir = os.path.join(
                run_dir, f"{map_id}.reexec{reexec_epochs[map_id]}")
            os.makedirs(fresh_dir, exist_ok=True)
            mo = run_map_task(job, spec.payload, dataset, fresh_dir)
            for path, _ in old.segments.values():
                try:
                    os.unlink(path)
                except OSError:
                    pass  # e.g. the missing segment that started this
            map_results[map_id] = mo
            if service is not None:
                service.register_map_output(
                    map_id, [path for path, _ in mo.segments.values()],
                    epoch=reexec_epochs[map_id])
            trace.set_profile(map_id, mo.profile)
            if charge:
                self.last_map_reexecs += 1
            if manifest is not None and map_id in manifest.tasks:
                # The checkpointed result pickle now points at deleted
                # segment paths; drop the record so a resume re-runs the
                # map instead of adopting a dangling checkpoint.
                del manifest.tasks[map_id]
                manifest.save()

        # Whole-host crashes apply at the shuffle barrier, exactly like
        # the serial runner: the host's segment server dies, the only
        # copies of its maps' segments die with it, and every completed
        # map homed there is proactively re-executed at a bumped epoch
        # before any reducer plans a fetch.
        for host in sorted(h for h, f in host_plan.items()
                           if f.mode == "host_crash"):
            monitor.declare_dead(host, "injected host_crash at barrier")
            if service is not None:
                index = int(host.removeprefix("host"))
                if index < service.num_servers:
                    service.kill_server(index)
            lost = sorted(t for t in map_results
                          if monitor.host_for(t) == host)
            monitor.charge_host_reexec(host, len(lost))
            for map_id in lost:
                rerun_map(map_id, charge=False)
        # Barrier deaths are fully handled here; drain them so the
        # scheduler's own dead-host sweep does not re-execute the maps
        # a second time.
        monitor.take_newly_dead()

        reduce_specs = [
            TaskSpec(f"r{part:05d}", "reduce", reduce_payload(part))
            for part in range(job.num_reducers)]
        if recovering:
            manifest.record_wave("reduce", [s.task_id for s in reduce_specs])

        def repair(corrupt_path: str) -> None:
            self._repair_segment(corrupt_path, job, dataset, map_specs,
                                 map_results, trace, manifest)

        def reexec(map_id: str) -> dict[str, Any]:
            """Re-run a completed map whose segments proved unfetchable
            (or whose host died mid-wave); returns the re-pointed
            payload for every reduce task.
            """
            rerun_map(map_id)
            return {f"r{part:05d}": reduce_payload(part)
                    for part in range(job.num_reducers)}

        # Wave 2: reduce tasks (dataset not needed in reduce workers).
        adopted_reduces = self._load_adopted(adopted, "reduce")
        self.last_adopted += len(adopted_reduces)
        try:
            reduce_results = scheduler.run_wave(
                reduce_specs, job, None, run_dir, repair=repair,
                precomputed=adopted_reduces, reexec=reexec, **wave_kwargs)
        finally:
            if service is not None:
                service.stop()

        return self._assemble_result(job, splits, map_specs, map_results,
                                     reduce_results, trace, monitor,
                                     host_plan)

    def _assemble_result(
        self,
        job: Job,
        splits: Sequence[InputSplit],
        map_specs: Sequence[TaskSpec],
        map_results: dict[str, MapTaskOutput],
        reduce_results: dict[str, Any],
        trace: RuntimeTrace,
        monitor: HostHealthMonitor,
        host_plan: dict,
        pipeline_per_task: list | None = None,
    ) -> JobResult:
        """Fold per-task results into a :class:`JobResult` exactly like
        the serial runner: map counters/profiles in split order, then
        reduces in partition order.  Counter merging commutes, so the
        bytes are identical -- including for tasks adopted from a
        checkpoint, whose counters ride inside their pickled results.
        Shared by the barrier and pipelined paths, which is what makes
        their byte-identity structural rather than coincidental.
        """
        counters = Counters()
        profiles: list[TaskProfile] = []
        map_stats = IFileStats()
        for spec in map_specs:
            mo = map_results[spec.task_id]
            counters.merge(mo.counters)
            profiles.append(mo.profile)
            trace.set_profile(mo.task_id, mo.profile)
            for _, stats in mo.segments.values():
                map_stats.merge(stats)

        output: list[tuple[Any, Any]] = []
        for part in range(job.num_reducers):
            rr = reduce_results[f"r{part:05d}"]
            output.extend(rr.output)
            counters.merge(rr.counters)
            profiles.append(rr.profile)
            trace.set_profile(rr.task_id, rr.profile)

        # Map re-executions are a job-level event (the winning task
        # counters stay identical to a fault-free run by design).
        if self.last_map_reexecs:
            counters.incr(C.MAPS_REEXECUTED, self.last_map_reexecs)
        if monitor.hosts_lost:
            counters.incr(C.HOSTS_LOST, monitor.hosts_lost)
        if monitor.maps_reexecuted_host:
            counters.incr(C.MAPS_REEXECUTED_HOST,
                          monitor.maps_reexecuted_host)
        disk_hosts = {h for h, f in host_plan.items()
                      if f.mode == "disk_fault"}
        if disk_hosts:
            # One failover per task homed on a disk-faulted host -- a
            # pure function of the plan, matching the serial runner
            # without plumbing per-worker failover flags.
            from repro.mapreduce.runtime.hosts import host_for
            ids = ([s.task_id for s in map_specs]
                   + [f"r{part:05d}" for part in range(job.num_reducers)])
            affected = sum(1 for t in ids
                           if host_for(t, self.num_hosts) in disk_hosts)
            if affected:
                counters.incr(C.DISK_FAILOVERS, affected)

        tally = getattr(self, "_memory_tally", None) or {}
        if tally.get("oom_events"):
            # Job-level, like MAPS_REEXECUTED: deterministic under an
            # injected fault plan, so serial and parallel runs count
            # identically; clean runs leave them zero (== absent).
            counters.incr(C.MEMORY_OOM_EVENTS, tally["oom_events"])
            counters.incr(C.MEMORY_DEGRADED_ATTEMPTS,
                          tally["degraded_attempts"])
        memory_stats = None
        if tally.get("used_budget"):
            shuffle_cfg = self._scheduler_kwargs.get("shuffle")
            memory_stats = {
                "budget": getattr(shuffle_cfg, "memory_budget", None),
                "peak_bytes": tally["peak_bytes"],
                "backpressure_waits": tally["backpressure_waits"],
                "oom_events": tally["oom_events"],
                "degraded_attempts": tally["degraded_attempts"],
            }

        return JobResult(
            output=output,
            counters=counters,
            task_profiles=profiles,
            map_output_stats=map_stats,
            num_map_tasks=len(splits),
            num_reduce_tasks=job.num_reducers,
            trace=trace,
            pipeline_stats=(aggregate_pipeline_stats(pipeline_per_task)
                            if pipeline_per_task is not None else None),
            memory_stats=memory_stats,
        )

    # ------------------------------------------------------- pipelined wave

    def _run_pipelined(
        self,
        job: Job,
        dataset: Dataset,
        splits: Sequence[InputSplit],
        scheduler: TaskScheduler,
        trace: RuntimeTrace,
        run_dir: str,
        manifest: JobManifest | None,
        adopted: dict[str, TaskRecord],
        monitor: HostHealthMonitor,
        injector: FaultInjector | None,
        shuffle_cfg: ShuffleConfig,
        host_plan: dict,
    ) -> JobResult:
        """One *combined* wave: reduce attempts admitted alongside maps.

        Each completed map's ``on_complete`` hook publishes a
        :class:`CommitRecord` into the run's commit log -- the
        completion-event stream pipelined reducers poll -- and registers
        the segments with the network shuffle service, which starts
        *before* the wave instead of at the barrier.  Reduce payloads
        carry a :class:`PipelinePlan`, so each reducer fetches segments
        as their producers commit and starts merging incrementally,
        holding final output until its pending-set drains.

        Fault semantics mirror the barrier path exactly:

        * fetch-failure escalation re-runs the map at a bumped epoch;
          re-pointing is the commit log's job (readers observe the new
          record, or a STALE_EPOCH fetch), so the ``reexec`` hook
          returns no payload updates;
        * an injected ``host_crash`` fires the moment the host's last
          homed map commits -- the pipelined analogue of the
          barrier-time crash -- re-executing its maps uncharged against
          the ordinary re-execution counter.

        Output and counters are byte-identical to the barrier path (and
        therefore to the serial runner); overlap measurements land in
        ``JobResult.pipeline_stats``, never in counters.
        """
        recovering = manifest is not None
        map_specs = [TaskSpec(f"m{s.split_id:05d}", "map", s) for s in splits]
        commit_dir = os.path.join(run_dir, COMMITS_DIRNAME)
        # Stale records from an interrupted run may point at attempt
        # directories the manifest no longer vouches for; adopted maps
        # are re-published below from their validated checkpoints.
        shutil.rmtree(commit_dir, ignore_errors=True)
        commitlog = CommitLog(commit_dir)
        reexec_epochs: dict[str, int] = {s.task_id: 0 for s in map_specs}
        map_results: dict[str, MapTaskOutput] = {}

        service = None
        if getattr(shuffle_cfg, "transport", "") == "network":
            from repro.mapreduce.runtime.netshuffle import ShuffleService
            service = ShuffleService.from_config(
                shuffle_cfg,
                faults=(injector.fetch_plan() if injector is not None
                        else None),
                trace=trace)
            service.start()

        def publish(map_id: str, mo: MapTaskOutput, attempt: int = 0,
                    detail: str = "") -> None:
            """Register + commit one map's output: the completion event.

            Registration precedes the commit record so ``address_for``
            reflects a server revived by the registration itself.
            """
            if service is not None:
                service.register_map_output(
                    map_id, [path for path, _ in mo.segments.values()],
                    epoch=reexec_epochs[map_id])
            commitlog.commit(CommitRecord(
                map_id=map_id,
                epoch=reexec_epochs[map_id],
                segments=mo.segments,
                address=(service.address_for(map_id)
                         if service is not None else None)))
            trace.record(map_id, attempt, "map", "pipeline_commit",
                         detail or f"epoch {reexec_epochs[map_id]}")

        def rerun_map(map_id: str, charge: bool = True) -> None:
            """Re-run one committed map into a fresh epoch directory.

            Same contract as the barrier path's ``rerun_map``, plus the
            re-published commit record: a reducer that already consumed
            the old epoch observes the bump in its next poll, discards
            the stale run, and re-fetches -- no payload re-pointing.
            """
            spec = next(s for s in map_specs if s.task_id == map_id)
            if service is not None:
                service.invalidate(map_id)
            reexec_epochs[map_id] += 1
            old = map_results[map_id]
            fresh_dir = os.path.join(
                run_dir, f"{map_id}.reexec{reexec_epochs[map_id]}")
            os.makedirs(fresh_dir, exist_ok=True)
            mo = run_map_task(job, spec.payload, dataset, fresh_dir)
            for path, _ in old.segments.values():
                try:
                    os.unlink(path)
                except OSError:
                    pass  # e.g. the missing segment that started this
            map_results[map_id] = mo
            publish(map_id, mo, attempt=reexec_epochs[map_id],
                    detail=f"republished at epoch {reexec_epochs[map_id]}")
            trace.set_profile(map_id, mo.profile)
            if charge:
                self.last_map_reexecs += 1
            if manifest is not None and map_id in manifest.tasks:
                del manifest.tasks[map_id]
                manifest.save()

        crash_pending = {h for h, f in host_plan.items()
                         if f.mode == "host_crash"}

        def maybe_crash_hosts() -> None:
            """Fire injected host crashes once their last homed map has
            committed -- the pipelined analogue of the barrier crash.
            The host's segment server dies, the only copies of its maps'
            segments die with it, and every map homed there is
            re-executed at a bumped epoch; reducers mid-pipeline observe
            the bumps through the commit log (or a STALE_EPOCH fetch).
            """
            crashed = []
            for host in sorted(crash_pending):
                homed = sorted(s.task_id for s in map_specs
                               if monitor.host_for(s.task_id) == host)
                if any(m not in map_results for m in homed):
                    continue
                crash_pending.discard(host)
                crashed.append(host)
                monitor.declare_dead(host,
                                     "injected host_crash mid-pipeline")
                if service is not None:
                    index = int(host.removeprefix("host"))
                    if index < service.num_servers:
                        service.kill_server(index)
                monitor.charge_host_reexec(host, len(homed))
                for map_id in homed:
                    rerun_map(map_id, charge=False)
            if crashed:
                # These deaths are fully handled; drain exactly them so
                # the scheduler's sweep neither re-executes the maps a
                # second time nor swallows an organic death queued
                # behind them.
                monitor.take_newly_dead(only=set(crashed))

        def on_complete(spec, attempt, attempt_dir, result_path, value):
            if recovering:
                self._checkpoint(manifest, spec, attempt, attempt_dir,
                                 result_path, value)
            if spec.kind == "map":
                map_results[spec.task_id] = value
                trace.set_profile(spec.task_id, value.profile)
                publish(spec.task_id, value, attempt=attempt)
                maybe_crash_hosts()
            else:
                stats = getattr(value, "pipeline", None)
                if stats:
                    trace.record(
                        spec.task_id, attempt, "reduce", "pipeline_drain",
                        f"overlapped {stats.get('overlapped_fetches', 0)} "
                        f"fetch(es), waited "
                        f"{stats.get('wait_seconds', 0.0):.3f}s")

        plan = PipelinePlan(commit_dir=commit_dir,
                            map_ids=tuple(s.task_id for s in map_specs))
        reduce_specs = [TaskSpec(f"r{part:05d}", "reduce", (part, plan))
                        for part in range(job.num_reducers)]
        if recovering:
            manifest.record_wave("map", [s.task_id for s in map_specs])
            manifest.record_wave("reduce",
                                 [s.task_id for s in reduce_specs])

        adopted_maps = self._load_adopted(adopted, "map")
        adopted_reduces = self._load_adopted(adopted, "reduce")
        self.last_adopted += len(adopted_maps) + len(adopted_reduces)
        # Adopted tasks never fire on_complete: publish their commit
        # records up front so pipelined reducers see them immediately,
        # and fire any crash whose homed maps were all adopted (or which
        # homes no maps at all).
        for map_id in sorted(adopted_maps):
            map_results[map_id] = adopted_maps[map_id]
            publish(map_id, adopted_maps[map_id],
                    detail="adopted from checkpoint")
        maybe_crash_hosts()

        def repair(corrupt_path: str) -> None:
            self._repair_segment(corrupt_path, job, dataset, map_specs,
                                 map_results, trace, manifest)

        def reexec(map_id: str) -> dict[str, Any]:
            """Fetch-failure escalation (and mid-wave host death): re-run
            the map at a bumped epoch.  The commit log re-points readers,
            so no reduce payloads change."""
            rerun_map(map_id)
            return {}

        try:
            results = scheduler.run_wave(
                list(map_specs) + reduce_specs, job, dataset, run_dir,
                repair=repair,
                precomputed={**adopted_maps, **adopted_reduces},
                reexec=reexec, on_complete=on_complete,
                keep_result_files=recovering, pipeline=True)
        finally:
            if service is not None:
                service.stop()

        reduce_results = {s.task_id: results[s.task_id]
                          for s in reduce_specs}
        per_task = [getattr(reduce_results[f"r{part:05d}"], "pipeline", None)
                    for part in range(job.num_reducers)]
        return self._assemble_result(job, splits, map_specs, map_results,
                                     reduce_results, trace, monitor,
                                     host_plan, pipeline_per_task=per_task)

    def _repair_segment(
        self,
        corrupt_path: str,
        job: Job,
        dataset: Dataset,
        map_specs: Sequence[TaskSpec],
        map_results: dict[str, MapTaskOutput],
        trace: RuntimeTrace,
        manifest: JobManifest | None = None,
    ) -> None:
        """Re-generate a corrupt map output segment in place.

        Map tasks are deterministic, so re-running the producer into its
        original attempt directory recreates every segment at the same
        path with the same bytes -- the waiting reduce retry picks them
        up without re-routing.  Runs inline in the scheduler process
        (fault injection only applies inside workers, so a repair can
        never be re-corrupted by the plan that broke it).
        """
        name = os.path.basename(corrupt_path)
        task_id = name.split("-out-")[0]
        spec = next((s for s in map_specs if s.task_id == task_id), None)
        if spec is None:
            raise RuntimeError(
                f"corrupt segment {corrupt_path} matches no map task")
        attempt_dir = os.path.dirname(corrupt_path)
        mo = run_map_task(job, spec.payload, dataset, attempt_dir)
        map_results[task_id] = mo
        trace.set_profile(task_id, mo.profile)
        trace.record(task_id, 0, "map", "repaired", corrupt_path)
        if manifest is not None and task_id in manifest.tasks:
            # Refresh the checkpoint CRCs: the repaired bytes are
            # identical for a healthy filesystem, but the record must
            # reflect what is on disk *now*.
            record = manifest.tasks[task_id]
            record.files = {p: file_crc32(p) for p in record.files
                            if os.path.exists(p)}
            manifest.record_task(record)
