"""Multiprocess drop-in replacement for the serial job runner.

``ParallelJobRunner.run(job, dataset, splits)`` has the same signature
and returns the same :class:`~repro.mapreduce.engine.JobResult` as
:class:`~repro.mapreduce.engine.LocalJobRunner.run` -- with
byte-identical :class:`~repro.mapreduce.metrics.Counters`, because both
runners execute the *same* top-level task functions over the *same*
IFile/codec data path; only the execution vehicle changes (a
:class:`~repro.mapreduce.runtime.scheduler.TaskScheduler` driving
worker processes over segments on shared disk, instead of a loop).

The job DAG is two waves with a shuffle barrier: every map task runs
first, writing one final IFile segment per reducer partition into its
attempt directory; reduce tasks then receive their partition's segment
*paths* and fetch the bytes themselves.  Retries, speculative
execution, and corrupt-segment repair are the scheduler's department;
the resulting :class:`~repro.mapreduce.runtime.trace.RuntimeTrace` is
attached to the job result as ``result.trace``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Any, Sequence

from repro.mapreduce.engine import (
    JobResult,
    MapTaskOutput,
    run_map_task,
)
from repro.mapreduce.ifile import IFileStats
from repro.mapreduce.job import Job
from repro.mapreduce.metrics import Counters, TaskProfile
from repro.mapreduce.runtime.fault import FaultInjector
from repro.mapreduce.runtime.scheduler import TaskScheduler, TaskSpec
from repro.mapreduce.runtime.trace import RuntimeTrace
from repro.scidata.dataset import Dataset
from repro.scidata.splits import ArraySplitter, InputSplit

__all__ = ["ParallelJobRunner"]


class ParallelJobRunner:
    """Run jobs on a bounded pool of worker processes.

    Constructor keywords mirror :class:`TaskScheduler`'s knobs; runner
    lifecycle (workdir ownership, ``keep_files``, context-manager
    cleanup) mirrors :class:`~repro.mapreduce.engine.LocalJobRunner`.
    """

    def __init__(
        self,
        workdir: str | None = None,
        keep_files: bool = False,
        *,
        max_workers: int | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        speculation: bool = True,
        straggler_factor: float = 3.0,
        min_straggler_seconds: float = 1.0,
        speculation_min_completed: int = 2,
        start_method: str | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        self._own_workdir = workdir is None
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-mrp-")
        self.keep_files = keep_files
        os.makedirs(self.workdir, exist_ok=True)
        self.max_workers = max_workers
        self._scheduler_kwargs = dict(
            max_workers=max_workers,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            speculation=speculation,
            straggler_factor=straggler_factor,
            min_straggler_seconds=min_straggler_seconds,
            speculation_min_completed=speculation_min_completed,
            start_method=start_method,
            fault_injector=fault_injector,
        )
        #: trace of the most recent run (also on ``JobResult.trace``)
        self.last_trace: RuntimeTrace | None = None

    def __enter__(self) -> "ParallelJobRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Remove an owned workdir (no-op for caller-supplied dirs)."""
        if self._own_workdir and os.path.isdir(self.workdir):
            shutil.rmtree(self.workdir, ignore_errors=True)

    # ------------------------------------------------------------------ run

    def run(
        self,
        job: Job,
        dataset: Dataset,
        splits: Sequence[InputSplit] | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``dataset``; returns outputs and metrics."""
        os.makedirs(self.workdir, exist_ok=True)
        if splits is None:
            variables = (list(job.input_variables)
                         if job.input_variables is not None else None)
            splits = ArraySplitter(job.num_map_tasks).split(dataset, variables)
        if not splits:
            raise ValueError("job has no input splits")

        trace = RuntimeTrace()
        scheduler = TaskScheduler(trace=trace, **self._scheduler_kwargs)
        run_dir = tempfile.mkdtemp(prefix="run-", dir=self.workdir)
        try:
            result = self._run_waves(job, dataset, splits, scheduler,
                                     trace, run_dir)
        finally:
            if not self.keep_files:
                shutil.rmtree(run_dir, ignore_errors=True)
            if (self._own_workdir and os.path.isdir(self.workdir)
                    and not os.listdir(self.workdir)):
                shutil.rmtree(self.workdir, ignore_errors=True)
        self.last_trace = trace
        return result

    def _run_waves(
        self,
        job: Job,
        dataset: Dataset,
        splits: Sequence[InputSplit],
        scheduler: TaskScheduler,
        trace: RuntimeTrace,
        run_dir: str,
    ) -> JobResult:
        # Wave 1: map tasks.
        map_specs = [TaskSpec(f"m{s.split_id:05d}", "map", s) for s in splits]
        map_results: dict[str, MapTaskOutput] = scheduler.run_wave(
            map_specs, job, dataset, run_dir)

        # Shuffle barrier: hand each reducer its partition's segment
        # paths, in map-task order (matching the serial runner exactly).
        reduce_specs = []
        for part in range(job.num_reducers):
            segments = [map_results[spec.task_id].segments[part]
                        for spec in map_specs]
            reduce_specs.append(
                TaskSpec(f"r{part:05d}", "reduce", (part, segments)))

        def repair(corrupt_path: str) -> None:
            self._repair_segment(corrupt_path, job, dataset, map_specs,
                                 map_results, trace)

        # Wave 2: reduce tasks (dataset not needed in reduce workers).
        reduce_results = scheduler.run_wave(
            reduce_specs, job, None, run_dir, repair=repair)

        # Assemble the JobResult exactly like the serial runner: map
        # counters/profiles in split order, then reduces in partition
        # order.  Counter merging commutes, so the bytes are identical.
        counters = Counters()
        profiles: list[TaskProfile] = []
        map_stats = IFileStats()
        for spec in map_specs:
            mo = map_results[spec.task_id]
            counters.merge(mo.counters)
            profiles.append(mo.profile)
            trace.set_profile(mo.task_id, mo.profile)
            for _, stats in mo.segments.values():
                map_stats.merge(stats)

        output: list[tuple[Any, Any]] = []
        for part in range(job.num_reducers):
            rr = reduce_results[f"r{part:05d}"]
            output.extend(rr.output)
            counters.merge(rr.counters)
            profiles.append(rr.profile)
            trace.set_profile(rr.task_id, rr.profile)

        return JobResult(
            output=output,
            counters=counters,
            task_profiles=profiles,
            map_output_stats=map_stats,
            num_map_tasks=len(splits),
            num_reduce_tasks=job.num_reducers,
            trace=trace,
        )

    def _repair_segment(
        self,
        corrupt_path: str,
        job: Job,
        dataset: Dataset,
        map_specs: Sequence[TaskSpec],
        map_results: dict[str, MapTaskOutput],
        trace: RuntimeTrace,
    ) -> None:
        """Re-generate a corrupt map output segment in place.

        Map tasks are deterministic, so re-running the producer into its
        original attempt directory recreates every segment at the same
        path with the same bytes -- the waiting reduce retry picks them
        up without re-routing.  Runs inline in the scheduler process
        (fault injection only applies inside workers, so a repair can
        never be re-corrupted by the plan that broke it).
        """
        name = os.path.basename(corrupt_path)
        task_id = name.split("-out-")[0]
        spec = next((s for s in map_specs if s.task_id == task_id), None)
        if spec is None:
            raise RuntimeError(
                f"corrupt segment {corrupt_path} matches no map task")
        attempt_dir = os.path.dirname(corrupt_path)
        mo = run_map_task(job, spec.payload, dataset, attempt_dir)
        map_results[task_id] = mo
        trace.set_profile(task_id, mo.profile)
        trace.record(task_id, 0, "map", "repaired", corrupt_path)
