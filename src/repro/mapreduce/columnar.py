"""Columnar spill buffering for the batched map-output fast path.

The scalar engine buffers map output as millions of small
``(key_bytes, value_bytes)`` tuples -- one Python object pair per record.
At paper scale (a sliding-window query emits 27 records per input cell,
i.e. 2.7e7 records for the Fig 8 grid) the object churn dominates map
runtime.  :class:`PartitionBuffer` instead accepts whole *chunks*: an
``(n, key_size)`` uint8 key matrix plus an ``(n, value_size)`` value
matrix, kept contiguous so the spill path can sort, combine and write
them with numpy passes and never materialize per-record ``bytes``.

Order is the invariant that makes the fast path byte-identical to the
scalar one: segments are kept in emission order, so concatenating them
reproduces exactly the record sequence the scalar buffer would hold, and
a *stable* sort of that sequence equals ``sort_records`` of the scalar
list.  Mixed buffers (some per-record appends, some chunks -- e.g. a
mapper that calls both ``emit`` and ``emit_batch``) simply decay to the
scalar representation via :meth:`PartitionBuffer.to_records`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PartitionBuffer"]

Record = tuple[bytes, bytes]


class PartitionBuffer:
    """Map-output buffer for one reducer partition.

    Holds an ordered list of segments, each either a ``list[Record]``
    (scalar appends) or a ``(keys, values)`` pair of uint8 matrices
    (columnar chunks).  :meth:`columnar_view` returns one contiguous
    matrix pair when -- and only when -- the whole buffer is columnar
    with uniform record widths; otherwise callers fall back to
    :meth:`to_records`.
    """

    __slots__ = ("_segments", "records", "nbytes")

    def __init__(self) -> None:
        self._segments: list = []
        self.records = 0
        #: payload bytes held (sum of key+value lengths, no per-record
        #: overhead) -- identical between the scalar and columnar
        #: representations of the same record sequence, so memory-ledger
        #: charges sized from it never depend on which path filled the
        #: buffer
        self.nbytes = 0

    def append(self, key: bytes, value: bytes) -> None:
        """Append one serialized record (scalar path)."""
        segments = self._segments
        if segments and type(segments[-1]) is list:
            segments[-1].append((key, value))
        else:
            segments.append([(key, value)])
        self.records += 1
        self.nbytes += len(key) + len(value)

    def append_chunk(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append an ``(n, kw)`` / ``(n, vw)`` uint8 chunk in emission order."""
        n = keys.shape[0]
        if n != values.shape[0]:
            raise ValueError(f"{n} keys vs {values.shape[0]} values")
        if n == 0:
            return
        self._segments.append((keys, values))
        self.records += n
        self.nbytes += n * (keys.shape[1] + values.shape[1])

    def columnar_view(self) -> tuple[np.ndarray, np.ndarray] | None:
        """One ``(keys, values)`` matrix pair for the whole buffer.

        Returns ``None`` when the buffer holds any scalar segment or
        chunks of differing record widths -- the caller then takes the
        scalar path via :meth:`to_records`.
        """
        if not self._segments:
            return None
        chunks: list[tuple[np.ndarray, np.ndarray]] = []
        for seg in self._segments:
            if type(seg) is list:
                return None
            chunks.append(seg)
        kw = chunks[0][0].shape[1]
        vw = chunks[0][1].shape[1]
        if any(k.shape[1] != kw or v.shape[1] != vw for k, v in chunks):
            return None
        if len(chunks) == 1:
            return chunks[0]
        return (
            np.concatenate([k for k, _ in chunks]),
            np.concatenate([v for _, v in chunks]),
        )

    def to_records(self) -> list[Record]:
        """Materialize the whole buffer as records, in emission order."""
        out: list[Record] = []
        for seg in self._segments:
            if type(seg) is list:
                out.extend(seg)
            else:
                keys, values = seg
                n, kw = keys.shape
                vw = values.shape[1]
                kflat = np.ascontiguousarray(keys).tobytes()
                vflat = np.ascontiguousarray(values).tobytes()
                out.extend(
                    (kflat[i * kw:(i + 1) * kw], vflat[i * vw:(i + 1) * vw])
                    for i in range(n)
                )
        return out

    def clear(self) -> None:
        self._segments.clear()
        self.records = 0
        self.nbytes = 0
