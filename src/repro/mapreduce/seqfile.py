"""Hadoop SequenceFile-compatible record framing.

Fig 2's hexdump is a *SequenceFile* stream, not an IFile: each record is
framed as ``<int32 record_len><int32 key_len><key><value>`` and a
16-byte sync marker (escaped by a ``-1`` record length) is inserted
every ``sync_interval`` bytes.  With SciHadoop's LongWritable coordinate
keys (``windspeed1`` + 3 x int64 + slot = 35 bytes) and a 4-byte value,
the record pitch is 4 + 4 + 35 + 4 = **47 bytes** -- exactly the stride
the paper's detector highlights (s=47, phi=34).

This module exists so experiment E2 can regenerate Fig 2's byte stream
with the original framing; the shuffle itself uses IFile (as Hadoop
does for intermediate data).
"""

from __future__ import annotations

import struct
from typing import Iterator

import numpy as np

from repro.util.rng import make_rng

__all__ = ["SequenceFileWriter", "read_sequence_file", "SYNC_SIZE"]

_I32 = struct.Struct(">i")
#: sync marker length (Hadoop: 16 random bytes fixed per file)
SYNC_SIZE = 16
_SYNC_ESCAPE = _I32.pack(-1)


class SequenceFileWriter:
    """Append-only SequenceFile-style record stream (in memory)."""

    def __init__(self, sync_interval: int = 2000, seed: int | None = None) -> None:
        if sync_interval < 100:
            raise ValueError(
                f"sync_interval must be >= 100 bytes, got {sync_interval}"
            )
        self.sync_interval = sync_interval
        self.sync_marker = bytes(make_rng(seed).integers(0, 256, SYNC_SIZE,
                                                         dtype=np.uint8))
        self._buf = bytearray()
        self._since_sync = 0
        self.records = 0

    def append(self, key: bytes, value: bytes) -> None:
        """Append one record, inserting a sync marker when due."""
        if self._since_sync >= self.sync_interval:
            self._buf.extend(_SYNC_ESCAPE)
            self._buf.extend(self.sync_marker)
            self._since_sync = 0
        frame = _I32.pack(len(key) + len(value)) + _I32.pack(len(key))
        self._buf.extend(frame)
        self._buf.extend(key)
        self._buf.extend(value)
        self._since_sync += len(frame) + len(key) + len(value)
        self.records += 1

    def getvalue(self) -> bytes:
        return bytes(self._buf)


def read_sequence_file(data: bytes, sync_marker: bytes) -> Iterator[tuple[bytes, bytes]]:
    """Iterate ``(key, value)`` records, skipping sync markers."""
    if len(sync_marker) != SYNC_SIZE:
        raise ValueError(f"sync marker must be {SYNC_SIZE} bytes")
    offset = 0
    n = len(data)
    while offset < n:
        if offset + 4 > n:
            raise ValueError("truncated record length")
        (record_len,) = _I32.unpack_from(data, offset)
        offset += 4
        if record_len == -1:
            if data[offset:offset + SYNC_SIZE] != sync_marker:
                raise ValueError("bad sync marker")
            offset += SYNC_SIZE
            continue
        if record_len < 0 or offset + 4 > n:
            raise ValueError("malformed record")
        (key_len,) = _I32.unpack_from(data, offset)
        offset += 4
        if key_len < 0 or key_len > record_len or offset + record_len > n:
            raise ValueError("malformed record frame")
        key = data[offset:offset + key_len]
        value = data[offset + key_len:offset + record_len]
        offset += record_len
        yield key, value
