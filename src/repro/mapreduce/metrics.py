"""Job counters and per-task cost profiles.

Hadoop exposes its data-path byte accounting through named counters; the
one the paper reports throughout is ``MAP_OUTPUT_MATERIALIZED_BYTES``
("Map output materialized bytes"), the on-disk size of the compressed map
output.  We reproduce the counters the experiments need, plus a
:class:`TaskProfile` per task that the cluster simulator schedules.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Counters", "TaskProfile", "C"]


class C:
    """Canonical counter names (subset of Hadoop's TaskCounter)."""

    MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
    MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
    MAP_OUTPUT_BYTES = "MAP_OUTPUT_BYTES"  # uncompressed serialized bytes
    MAP_OUTPUT_MATERIALIZED_BYTES = "MAP_OUTPUT_MATERIALIZED_BYTES"
    MAP_OUTPUT_KEY_BYTES = "MAP_OUTPUT_KEY_BYTES"
    MAP_OUTPUT_VALUE_BYTES = "MAP_OUTPUT_VALUE_BYTES"
    MAP_OUTPUT_FILE_OVERHEAD_BYTES = "MAP_OUTPUT_FILE_OVERHEAD_BYTES"
    COMBINE_INPUT_RECORDS = "COMBINE_INPUT_RECORDS"
    COMBINE_OUTPUT_RECORDS = "COMBINE_OUTPUT_RECORDS"
    SPILLED_RECORDS = "SPILLED_RECORDS"
    SPILL_COUNT = "SPILL_COUNT"
    SHUFFLE_BYTES = "SHUFFLE_BYTES"
    MERGE_PASS_BYTES = "MERGE_PASS_BYTES"  # extra reducer-side merge I/O
    KEY_SPLITS = "KEY_SPLITS"  # aggregate keys split (routing + overlap)
    REDUCE_INPUT_GROUPS = "REDUCE_INPUT_GROUPS"
    REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
    REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
    # skipping mode (Hadoop SkipBadRecords): poison/corrupt records the
    # task isolated and routed to quarantine side-files instead of failing
    RECORDS_SKIPPED = "RECORDS_SKIPPED"
    QUARANTINE_RECORDS = "QUARANTINE_RECORDS"
    QUARANTINE_BYTES = "QUARANTINE_BYTES"
    # shuffle transport (fetch) accounting.  SHUFFLE_BYTES above is the
    # logical partition payload; SHUFFLE_BYTES_TRANSFERRED is what the
    # transport actually moved (re-fetches and truncated transfers make
    # them diverge under faults).
    SHUFFLE_FETCHES = "SHUFFLE_FETCHES"
    SHUFFLE_RETRIES = "SHUFFLE_RETRIES"
    SHUFFLE_FAILED_FETCHES = "SHUFFLE_FAILED_FETCHES"
    SHUFFLE_BYTES_TRANSFERRED = "SHUFFLE_BYTES_TRANSFERRED"
    # network shuffle: what actually crossed the wire.  WIRE_BYTES is the
    # (possibly codec-compressed) segment payload as transmitted;
    # WIRE_BYTES_UNCOMPRESSED is the same payload before the wire codec,
    # so their ratio is the on-the-wire compression the paper's stride
    # codec is after.  Both stay zero for in-process transports.
    SHUFFLE_WIRE_BYTES = "SHUFFLE_WIRE_BYTES"
    SHUFFLE_WIRE_BYTES_UNCOMPRESSED = "SHUFFLE_WIRE_BYTES_UNCOMPRESSED"
    # completed map tasks re-executed after a reducer exceeded its
    # fetch-failure threshold (Hadoop's "too many fetch failures")
    MAPS_REEXECUTED = "MAPS_REEXECUTED"
    # host failure domains: whole hosts declared dead (their segment
    # copies lost), completed maps re-executed *because* their only
    # copies lived on a lost host, and spill-path failovers onto a
    # secondary workdir after a disk fault
    HOSTS_LOST = "HOSTS_LOST"
    MAPS_REEXECUTED_HOST = "MAPS_REEXECUTED_HOST"
    DISK_FAILOVERS = "DISK_FAILOVERS"
    # memory resilience: injected/real OOM deaths the runners absorbed
    # and the degraded (halved-buffer) retries that absorbed them.
    # Deterministic under an injected fault plan, so they live in job
    # counters and stay serial/parallel-identical; clean runs leave
    # them zero (== absent).  Backpressure waits and byte peaks are
    # wall-clock-shaped and live in ``JobResult.memory_stats`` instead.
    MEMORY_OOM_EVENTS = "MEMORY_OOM_EVENTS"
    MEMORY_DEGRADED_ATTEMPTS = "MEMORY_DEGRADED_ATTEMPTS"
    # pipelined shuffle.  These are wall-clock-shaped measurements, so
    # they live in ``JobResult.pipeline_stats`` (keyed by these names),
    # NEVER in task/job ``Counters`` -- pipeline on/off must stay
    # byte-identical on counters.  REDUCE_FIRST_FETCH_MS is how soon the
    # first reducer fetch completed after the reduce attempt started;
    # PIPELINE_OVERLAP counts fetches completed while at least one
    # producing map was still uncommitted.
    REDUCE_FIRST_FETCH_MS = "REDUCE_FIRST_FETCH_MS"
    PIPELINE_OVERLAP = "PIPELINE_OVERLAP"


class Counters:
    """A named-counter multiset with merge, mirroring Hadoop counters.

    Merging is commutative and associative, so counters accumulated by
    tasks running in different processes and merged in *any* order are
    byte-identical to a serial accumulation -- the guarantee the
    parallel runtime's equivalence tests pin down.
    """

    def __init__(self) -> None:
        self._values: dict[str, int] = defaultdict(int)

    def incr(self, name: str, amount: int = 1) -> None:
        self._values[name] += int(amount)

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    @classmethod
    def merged(cls, parts: "Iterable[Counters]") -> "Counters":
        """A fresh counter set folding every element of ``parts``."""
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    def as_dict(self) -> dict[str, int]:
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        """Equal iff every counter matches (zero == absent)."""
        if not isinstance(other, Counters):
            return NotImplemented
        names = set(self._values) | set(other._values)
        return all(self.get(n) == other.get(n) for n in names)

    def __hash__(self) -> None:  # type: ignore[assignment]
        raise TypeError("Counters are mutable and unhashable")

    def diff(self, other: "Counters") -> dict[str, tuple[int, int]]:
        """``name -> (self, other)`` for every counter that differs."""
        names = set(self._values) | set(other._values)
        return {
            n: (self.get(n), other.get(n))
            for n in sorted(names)
            if self.get(n) != other.get(n)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counters({rows})"


@dataclass
class TaskProfile:
    """What one task did, in units the cluster simulator prices.

    ``cpu_seconds`` is split by category (``map``, ``codec``, ``sort``,
    ``reduce`` ...) so experiments can scale individual components -- e.g.
    §III-E attributes the 2x runtime regression specifically to transform
    CPU.
    """

    task_id: str
    kind: str  # "map" or "reduce"
    input_bytes: int = 0
    #: bytes written to local disk (spills + final map output / merge passes)
    local_write_bytes: int = 0
    #: bytes read back from local disk (merges, reduce input)
    local_read_bytes: int = 0
    #: bytes crossing the network (map->reduce fetch), before any wire
    #: codec -- the logical segment payload
    shuffle_bytes: int = 0
    #: bytes that actually crossed the NIC when a network transport
    #: measured them (wire-codec compressed); ``None`` = unmeasured
    #: (in-process transports), and the simulator falls back to
    #: ``shuffle_bytes``
    wire_bytes: int | None = None
    output_bytes: int = 0
    cpu_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_cpu(self) -> float:
        return sum(self.cpu_seconds.values())
