"""Pluggable compression codecs (Hadoop's ``CompressionCodec`` hook).

§III's whole strategy rests on this extension point: "Given the difficulty
of changing core Hadoop code, our first approach was to take advantage of
Hadoop's pluggable compression and write a custom compression module."
The stride codec in :mod:`repro.core.stride.codec` registers itself here;
the engine looks codecs up by name from the job configuration.

Every codec reports CPU seconds spent compressing/decompressing via a
:class:`~repro.util.timing.CostClock`, which the cluster simulator uses to
reproduce §III-E's finding that the transform's CPU cost (about 2.9x
gzip) can erase its I/O savings.
"""

from __future__ import annotations

import bz2
import zlib
from abc import ABC, abstractmethod

from repro.util.errors import CorruptRecordError, CorruptStreamError
from repro.util.timing import CostClock

__all__ = [
    "Codec",
    "NullCodec",
    "ZlibCodec",
    "Bz2Codec",
    "register_codec",
    "get_codec",
    "available_codecs",
]


class Codec(ABC):
    """Block compressor applied to a whole IFile segment."""

    #: registry name, set by subclasses
    name: str = "abstract"

    def __init__(self) -> None:
        self.clock = CostClock()

    @abstractmethod
    def _compress(self, data: bytes) -> bytes: ...

    @abstractmethod
    def _decompress(self, data: bytes) -> bytes: ...

    def compress(self, data: bytes) -> bytes:
        with self.clock.measure("compress"):
            return self._compress(data)

    def decompress(self, data: bytes) -> bytes:
        """Decompress ``data``, charging CPU time to the cost clock.

        Backend failures on corrupt input (``zlib.error``, bz2's
        ``OSError``/``EOFError``, stride metadata errors) are surfaced
        as :class:`~repro.util.errors.CorruptStreamError` so a
        bit-flipped stream fails the same structured way everywhere.
        """
        with self.clock.measure("decompress"):
            try:
                return self._decompress(data)
            except CorruptRecordError:
                raise
            except Exception as exc:
                raise CorruptStreamError(
                    f"codec {self.name!r} failed to decompress: {exc}"
                ) from exc

    @property
    def cpu_seconds(self) -> float:
        """Total codec CPU charged so far (compress + decompress)."""
        return self.clock.total()


class NullCodec(Codec):
    """Identity codec -- plain Hadoop without intermediate compression."""

    name = "null"

    def _compress(self, data: bytes) -> bytes:
        return data

    def _decompress(self, data: bytes) -> bytes:
        return data


class ZlibCodec(Codec):
    """zlib/DEFLATE, Hadoop's built-in default codec (§III-E uses it)."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        super().__init__()
        if not 1 <= level <= 9:
            raise ValueError(f"zlib level must be 1..9, got {level}")
        self.level = level

    def _compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def _decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


class Bz2Codec(Codec):
    """bzip2 -- the stronger/slower generic codec in Fig 3."""

    name = "bz2"

    def __init__(self, level: int = 9) -> None:
        super().__init__()
        if not 1 <= level <= 9:
            raise ValueError(f"bz2 level must be 1..9, got {level}")
        self.level = level

    def _compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.level)

    def _decompress(self, data: bytes) -> bytes:
        # bz2.decompress(b"") returns b"" instead of raising, but no
        # bz2 stream is ever empty -- a zero-length input is a truncated
        # stream and must fail like one.
        if not data:
            raise EOFError("empty bz2 stream")
        return bz2.decompress(data)


def cost_categories(codec: Codec) -> dict[str, float]:
    """Split a codec's CPU cost into named categories for task profiles.

    Transform codecs (§III) report ``transform`` and ``codec`` (generic
    compressor) separately -- the split behind the paper's "2.9 times the
    cost of gzip alone" diagnosis; plain codecs report only ``codec``.
    """
    transform = getattr(codec, "transform_seconds", None)
    if transform is not None:
        return {
            "transform": transform,
            "codec": getattr(codec, "backend_seconds", 0.0),
        }
    return {"codec": codec.cpu_seconds}


_REGISTRY: dict[str, type[Codec]] = {}


def register_codec(cls: type[Codec]) -> type[Codec]:
    """Class decorator adding a codec to the registry."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"{cls.__name__} must define a registry name")
    _REGISTRY[cls.name] = cls
    return cls


def get_codec(name: str, **kwargs) -> Codec:
    """Instantiate a registered codec by name.

    Imports :mod:`repro.core.stride.codec` lazily on first miss so the
    stride codecs are available without an import cycle.
    """
    if name not in _REGISTRY:
        _load_plugin_codecs()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def _load_plugin_codecs() -> None:
    """Import modules that register additional codecs (stride, §III)."""
    import repro.core.stride.codec  # noqa: F401  (registration side effect)


def available_codecs() -> list[str]:
    """Names of all registered codecs (forces stride codec registration)."""
    _load_plugin_codecs()
    return sorted(_REGISTRY)


register_codec(NullCodec)
register_codec(ZlibCodec)
register_codec(Bz2Codec)
