"""Sorting and k-way merging of serialized record runs.

Hadoop sorts intermediate records by their serialized key bytes (raw
comparators); because every serde in :mod:`repro.mapreduce.serde` is
order-preserving, raw-byte order here equals semantic order.  The merge
machinery supports the multi-pass behaviour the paper lists as step 5 of
the data flow ("possibly requiring multiple on-disk sort phases"): when a
reducer holds more runs than ``merge_factor``, extra passes fold runs
together through real files, and that extra disk traffic is charged to
the task profile.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "sort_records",
    "merge_runs",
    "group_by_key",
    "plan_merge_passes",
    "argsort_key_matrix",
    "group_bounds",
]

Record = tuple[bytes, bytes]


def argsort_key_matrix(keys: np.ndarray) -> np.ndarray:
    """Stable sort order of an ``(n, key_size)`` uint8 key matrix.

    The columnar counterpart of :func:`sort_records`: rows are compared
    as raw key bytes (via a fixed-width ``S`` view, the same comparator
    the record fast path uses), and ``kind='stable'`` preserves emission
    order among equal keys -- so gathering records by the returned order
    yields exactly the sequence :func:`sort_records` would produce.
    """
    n, width = keys.shape
    if n < 2:
        return np.arange(n)
    view = np.ascontiguousarray(keys).view(f"S{width}").ravel()
    return np.argsort(view, kind="stable")


def group_bounds(sorted_keys: np.ndarray) -> np.ndarray:
    """Group boundaries of a key-sorted ``(n, key_size)`` uint8 matrix.

    Returns indices ``b`` with ``len(b) == ngroups + 1``; group ``g``
    spans rows ``[b[g], b[g+1])``.  Grouping is by exact row (byte)
    equality, matching :func:`group_by_key`.
    """
    n = sorted_keys.shape[0]
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    change = np.flatnonzero(np.any(sorted_keys[1:] != sorted_keys[:-1], axis=1))
    return np.concatenate(([0], change + 1, [n]))


def sort_records(records: list[Record]) -> list[Record]:
    """Stable sort by raw key bytes.

    Fast path: when all keys share one length (true for cell and range
    keys of a single variable), pack keys into a numpy ``S``-dtype column
    and argsort -- numpy's bytes sort is ~10x faster than list.sort with
    Python bytes comparisons at mapper-buffer sizes.  ``kind='stable'``
    preserves emission order among equal keys, matching list.sort.
    """
    if len(records) < 2:
        return list(records)
    first_len = len(records[0][0])
    if first_len > 0 and all(len(k) == first_len for k, _ in records):
        keys = np.array([k for k, _ in records], dtype=f"S{first_len}")
        order = np.argsort(keys, kind="stable")
        return [records[i] for i in order]
    return sorted(records, key=itemgetter(0))


def merge_runs(runs: Sequence[Iterable[Record]]) -> Iterator[Record]:
    """K-way merge of key-sorted runs into one key-sorted stream."""
    return heapq.merge(*runs, key=itemgetter(0))


def group_by_key(stream: Iterable[Record]) -> Iterator[tuple[bytes, list[bytes]]]:
    """Group a key-sorted record stream into ``(key, [values...])``.

    This is the reducer-side grouping of step 5/6 in the paper's data
    flow; it relies on equal keys being byte-identical (our serdes are
    canonical encodings).
    """
    current_key: bytes | None = None
    values: list[bytes] = []
    for key, value in stream:
        if key != current_key:
            if current_key is not None:
                yield current_key, values
            current_key = key
            values = []
        values.append(value)
    if current_key is not None:
        yield current_key, values


def plan_merge_passes(num_runs: int, merge_factor: int) -> list[int]:
    """How many runs each intermediate merge pass folds together.

    Returns a list of group sizes for on-disk passes; after executing
    them the surviving run count is <= ``merge_factor`` so the final
    merge can stream.  Mirrors Hadoop's ``io.sort.factor`` behaviour in
    spirit (first pass may be smaller so later passes are full-width).
    """
    if merge_factor < 2:
        raise ValueError(f"merge_factor must be >= 2, got {merge_factor}")
    if num_runs < 0:
        raise ValueError(f"num_runs must be >= 0, got {num_runs}")
    passes: list[int] = []
    remaining = num_runs
    while remaining > merge_factor:
        # Fold merge_factor runs into one: net reduction merge_factor - 1.
        take = min(merge_factor, remaining - merge_factor + 1)
        if take < 2:
            break
        passes.append(take)
        remaining -= take - 1
    return passes
