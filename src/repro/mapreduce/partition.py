"""Partitioners: route intermediate keys to reducers.

Hadoop's default hashes each key independently (assumption (a) in §II-B:
"keys are routed independently, and the user has no information about or
control over grouping or dispersal of keys").  Key aggregation needs a
*total-order* partitioner over the space-filling-curve index space so an
aggregate range maps to a contiguous set of reducers and can be split at
the partition boundaries ("A mapper may generate an aggregate key whose
simple keys do not all route to the same reducer", §IV-B).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

import numpy as np

from repro.mapreduce.keys import RangeKey

__all__ = ["Partitioner", "HashPartitioner", "CurveRangePartitioner"]


class Partitioner(ABC):
    """Maps a serialized key to a reducer index in ``[0, num_reducers)``."""

    def __init__(self, num_reducers: int) -> None:
        if num_reducers < 1:
            raise ValueError(f"num_reducers must be >= 1, got {num_reducers}")
        self.num_reducers = num_reducers

    @abstractmethod
    def partition(self, key_bytes: bytes) -> int: ...

    def partition_batch(self, keys: np.ndarray) -> np.ndarray:
        """Partition an ``(n, key_size)`` uint8 key matrix.

        Returns an ``(n,)`` int64 array; MUST equal calling
        :meth:`partition` row by row.  The base implementation does
        exactly that -- subclasses shortcut where a whole batch can be
        routed without per-key hashing.
        """
        n = keys.shape[0]
        if self.num_reducers == 1:
            return np.zeros(n, dtype=np.int64)
        flat = memoryview(np.ascontiguousarray(keys)).cast("B")
        width = keys.shape[1]
        return np.fromiter(
            (self.partition(bytes(flat[i * width:(i + 1) * width]))
             for i in range(n)),
            dtype=np.int64, count=n,
        )


class HashPartitioner(Partitioner):
    """Hadoop's default: stable hash of the serialized key, mod reducers.

    Uses blake2b rather than Python's randomized ``hash()`` so runs are
    reproducible across processes.
    """

    def partition(self, key_bytes: bytes) -> int:
        digest = hashlib.blake2b(key_bytes, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.num_reducers

    def partition_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized where possible: one-reducer jobs skip hashing entirely.

        With several reducers each key still needs its blake2b digest
        (there is no vectorized form), but hashing a memoryview slice per
        row avoids the per-record bytes/object churn of the scalar path.
        """
        n = keys.shape[0]
        if self.num_reducers == 1:
            return np.zeros(n, dtype=np.int64)
        blake2b = hashlib.blake2b
        from_bytes = int.from_bytes
        width = keys.shape[1]
        flat = memoryview(np.ascontiguousarray(keys)).cast("B")
        R = self.num_reducers
        return np.fromiter(
            (from_bytes(blake2b(flat[i * width:(i + 1) * width],
                                digest_size=8).digest(), "big") % R
             for i in range(n)),
            dtype=np.int64, count=n,
        )


class CurveRangePartitioner(Partitioner):
    """Total-order partitioner over curve indices ``[0, curve_size)``.

    Reducer ``r`` owns indices ``[boundary[r], boundary[r+1])`` with
    near-equal spans.  Aggregate keys must be pre-split so each emitted
    range lies within one reducer's span; :meth:`check_range` enforces
    that invariant (it is the routing half of §IV-B key splitting).
    """

    def __init__(self, num_reducers: int, curve_size: int) -> None:
        super().__init__(num_reducers)
        if curve_size < 1:
            raise ValueError(f"curve_size must be >= 1, got {curve_size}")
        self.curve_size = curve_size
        # boundary[r] = first index owned by reducer r; boundary[R] = size.
        self.boundaries = [
            (curve_size * r) // num_reducers for r in range(num_reducers + 1)
        ]

    def reducer_for_index(self, index: int) -> int:
        if not 0 <= index < self.curve_size:
            raise ValueError(f"index {index} outside [0, {self.curve_size})")
        # num_reducers is small (paper uses 5); linear scan beats bisect
        # overhead for these sizes and is obviously correct.
        for r in range(self.num_reducers):
            if index < self.boundaries[r + 1]:
                return r
        raise AssertionError("unreachable")

    def split_points(self) -> list[int]:
        """Interior partition boundaries (where ranges must be split)."""
        return self.boundaries[1:-1]

    def check_range(self, rng: RangeKey) -> int:
        """Reducer owning ``rng``; raises if it straddles a boundary."""
        first = self.reducer_for_index(rng.start)
        last = self.reducer_for_index(rng.end - 1)
        if first != last:
            raise ValueError(
                f"{rng} straddles reducers {first}..{last}; split it before routing"
            )
        return first

    def partition(self, key_bytes: bytes) -> int:
        raise NotImplementedError(
            "CurveRangePartitioner routes decoded ranges via check_range(); "
            "raw-bytes partitioning would re-parse every key"
        )
