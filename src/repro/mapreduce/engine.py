"""Local MapReduce job runner with a faithful Hadoop data path.

Executes every phase of the paper's Fig 1 data flow in-process, through
*real* files and codecs, so byte counters are measurements:

1. mappers read array input splits,
2. map output is buffered, sorted, (optionally combined) and spilled to
   disk as IFile runs,
3. spills are merged into one final, codec-compressed map output segment
   per reducer partition ("Map output materialized bytes"),
4. reducers fetch their segments (shuffle bytes),
5. runs are merge-sorted, with extra on-disk passes when the run count
   exceeds the merge factor,
6. records are grouped by key and reduced,
7. output is collected.

The task bodies -- :func:`run_map_task` and :func:`run_reduce_task` --
are standalone top-level functions so they are picklable and shared by
both execution backends: the serial :class:`LocalJobRunner` here and the
multiprocess :class:`~repro.mapreduce.runtime.ParallelJobRunner`.
Wall-clock on a real cluster can also be *simulated* from the per-task
profiles these tasks measure -- see :mod:`repro.mapreduce.simcluster`.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from contextlib import nullcontext
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Sequence

import numpy as np

from repro.mapreduce.api import MapContext, ReduceContext
from repro.mapreduce.codecs import cost_categories, get_codec
from repro.mapreduce.columnar import PartitionBuffer
from repro.mapreduce.ifile import (
    IFileCorruptError,
    IFileReader,
    IFileStats,
    IFileWriter,
)
from repro.mapreduce.job import Job
from repro.mapreduce.metrics import C, Counters, TaskProfile
from repro.mapreduce.sort import (
    argsort_key_matrix,
    group_bounds,
    group_by_key,
    merge_runs,
    plan_merge_passes,
    sort_records,
)
from repro.scidata.dataset import Dataset
from repro.scidata.splits import ArraySplitter, InputSplit
from repro.util.timing import CostClock

__all__ = [
    "LocalJobRunner",
    "JobResult",
    "MapTaskOutput",
    "ReduceTaskResult",
    "run_map_task",
    "run_reduce_task",
]

Record = tuple[bytes, bytes]


@dataclass
class JobResult:
    """Everything a job run produced and measured."""

    output: list[tuple[Any, Any]]
    counters: Counters
    task_profiles: list[TaskProfile]
    #: byte breakdown of the final (materialized) map output segments
    map_output_stats: IFileStats
    num_map_tasks: int = 0
    num_reduce_tasks: int = 0
    #: execution timeline, populated by runners that record one (the
    #: parallel runtime attaches a ``RuntimeTrace``; the serial runner
    #: leaves it ``None``)
    trace: Any = None
    #: aggregated pipelined-shuffle stats (``REDUCE_FIRST_FETCH_MS`` /
    #: ``PIPELINE_OVERLAP`` and friends), populated only when the run
    #: was pipelined; deliberately outside ``counters`` so pipeline
    #: on/off compares byte-identical
    pipeline_stats: dict | None = None
    #: aggregated memory-ledger telemetry (peak charged bytes, budget,
    #: backpressure waits, OOM events absorbed) when any task ran with
    #: a :class:`~repro.mapreduce.runtime.memory.MemoryBudget`; peaks
    #: and waits are wall-clock-shaped, so this lives outside
    #: ``counters`` like ``pipeline_stats``
    memory_stats: dict | None = None

    @property
    def materialized_bytes(self) -> int:
        """The paper's headline metric: 'Map output materialized bytes'."""
        return self.counters.get(C.MAP_OUTPUT_MATERIALIZED_BYTES)


@dataclass
class MapTaskOutput:
    """Final per-partition segments of one map task."""

    task_id: str
    profile: TaskProfile
    counters: Counters
    #: partition -> (path, stats); empty partitions still get a segment
    segments: dict[int, tuple[str, IFileStats]] = field(default_factory=dict)


@dataclass
class ReduceTaskResult:
    """Output and measurements of one reduce task."""

    task_id: str
    output: list[tuple[Any, Any]]
    counters: Counters
    profile: TaskProfile
    #: pipelined-shuffle side stats (first fetch latency, overlapped
    #: fetches, poll wait) -- kept OUT of ``counters`` so pipeline
    #: on/off stays byte-identical; ``None`` on the barrier path
    pipeline: dict | None = None


# --------------------------------------------------------------------- tasks
#
# The functions below are the single source of truth for what a map or
# reduce task *does*.  They take every dependency as an argument (no
# runner state), so any execution backend -- serial loop, process pool,
# or a future distributed shell -- produces byte-identical counters.


#: one spill's output for one partition: ``(path, stats, colmeta)`` where
#: ``colmeta`` is ``(key_width, value_width)`` when the segment was
#: written columnar (every record fixed-width) and ``None`` otherwise
SpillSegment = tuple[str, IFileStats, "tuple[int, int] | None"]


def _spill(
    job: Job,
    workdir: str,
    task_id: str,
    spill_idx: int,
    buffer: dict[int, PartitionBuffer],
    codec,
    counters: Counters,
    profile: TaskProfile,
    clock: CostClock,
) -> dict[int, SpillSegment]:
    """Sort + (combine) + write one spill; returns per-partition files.

    Each partition takes the columnar path (numpy stable argsort of the
    key matrix, bulk IFile write) when its buffer is purely columnar, and
    the scalar path otherwise.  Both produce identical bytes and
    counters; only the cost differs.
    """
    out: dict[int, SpillSegment] = {}
    for part, pbuf in buffer.items():
        if pbuf.records == 0:
            continue
        colview = pbuf.columnar_view() if job.columnar else None
        path = os.path.join(workdir, f"{task_id}-spill{spill_idx}-p{part}")
        writer = IFileWriter(path, codec)
        colmeta: tuple[int, int] | None = None
        if colview is not None:
            kmat, vmat = colview
            with clock.measure("sort"):
                order = argsort_key_matrix(kmat)
                kmat = np.ascontiguousarray(kmat[order])
                vmat = np.ascontiguousarray(vmat[order])
            if job.combiner is not None:
                with clock.measure("combine"):
                    records = _combine_columnar(job, kmat, vmat, counters)
                for kb, vb in records:
                    writer.append(kb, vb)
            else:
                writer.append_batch(kmat, vmat)
                colmeta = (kmat.shape[1], vmat.shape[1])
        else:
            records = pbuf.to_records()
            with clock.measure("sort"):
                records = sort_records(records)
            if job.combiner is not None:
                with clock.measure("combine"):
                    records = _combine(job, records, counters)
            for kb, vb in records:
                writer.append(kb, vb)
        stats = writer.close()
        counters.incr(C.SPILLED_RECORDS, stats.records)
        profile.local_write_bytes += stats.materialized_bytes
        out[part] = (path, stats, colmeta)
    counters.incr(C.SPILL_COUNT)
    return out


def _combine(job: Job, records: list[Record], counters: Counters) -> list[Record]:
    """Run the job's combiner over one sorted run."""
    combiner = job.combiner()
    out: list[Record] = []
    for kb, value_blobs in group_by_key(records):
        counters.incr(C.COMBINE_INPUT_RECORDS, len(value_blobs))
        key = job.key_serde.from_bytes(kb)
        values = job.value_serde.read_batch(value_blobs)
        for v in combiner.combine(key, values):
            vout = bytearray()
            job.value_serde.write(v, vout)
            out.append((kb, bytes(vout)))
            counters.incr(C.COMBINE_OUTPUT_RECORDS)
    return out


def _combine_columnar(
    job: Job,
    kmat: np.ndarray,
    vmat: np.ndarray,
    counters: Counters,
) -> list[Record]:
    """Run the combiner over one key-sorted columnar run.

    Groups are adjacent equal key rows; each group's values decode in one
    :meth:`~repro.mapreduce.serde.Serde.read_column` pass over the
    contiguous value slab instead of one ``from_bytes`` call per record.
    Output records (and counters) are identical to
    ``_combine(job, <same run as records>)``.
    """
    combiner = job.combiner()
    out: list[Record] = []
    bounds = group_bounds(kmat)
    vflat = memoryview(vmat).cast("B")
    vw = vmat.shape[1]
    for g in range(len(bounds) - 1):
        start, end = int(bounds[g]), int(bounds[g + 1])
        counters.incr(C.COMBINE_INPUT_RECORDS, end - start)
        kb = kmat[start].tobytes()
        key = job.key_serde.from_bytes(kb)
        values = job.value_serde.read_column(
            vflat[start * vw:end * vw], end - start)
        for v in combiner.combine(key, values):
            vout = bytearray()
            job.value_serde.write(v, vout)
            out.append((kb, bytes(vout)))
            counters.incr(C.COMBINE_OUTPUT_RECORDS)
    return out


def run_map_task(job: Job, split: InputSplit, dataset: Dataset,
                 workdir: str, *, driver=None, memory=None) -> MapTaskOutput:
    """Execute one map task (Fig 1 steps 2-3) into ``workdir``.

    Pure function of its arguments: reads the split's slab, runs the
    mapper, spills sorted runs, and merges them into one final IFile
    segment per reducer partition.  Segment files are written atomically
    so a killed worker never leaves a truncated final segment behind.

    ``driver`` (when given) replaces the plain ``mapper.map`` +
    ``mapper.cleanup`` call with ``driver(mapper, split, values, ctx)``
    and owns cleanup -- the hook the skipping runtime uses to run the
    mapper over sub-ranges of the input.  ``None`` (the default) leaves
    the clean path byte-identical to before the hook existed.

    ``memory`` (a :class:`~repro.mapreduce.runtime.memory.MemoryBudget`,
    or ``None`` for unaccounted) rents the sort buffer's bytes under the
    ``"sort"`` site around each spill: the charge equals the buffered
    byte count the spill threshold tracks, so it is deterministic across
    runners, and an enforced overrun raises ``MemoryError`` -- the
    signal the degrade-on-retry ladder answers with a halved buffer.
    """
    task_id = f"m{split.split_id:05d}"
    counters = Counters()
    clock = CostClock()
    profile = TaskProfile(task_id=task_id, kind="map")
    codec = get_codec(job.codec, **job.codec_options)
    partitioner = job.partitioner(job.num_reducers)
    plugin = job.shuffle_plugin

    buffer: dict[int, PartitionBuffer] = {
        p: PartitionBuffer() for p in range(job.num_reducers)
    }
    buffered = 0
    spills: list[dict[int, SpillSegment]] = []

    def flush() -> None:
        nonlocal buffered
        if buffered == 0:
            return
        # The charge is the exact byte count the spill threshold tracks,
        # so serial and parallel attempts charge identically; rent()
        # releases on every path, including a MemoryError mid-spill.
        rent = (memory.rent(buffered, site="sort") if memory is not None
                else nullcontext())
        with rent:
            spills.append(
                _spill(job, workdir, task_id, len(spills), buffer, codec,
                       counters, profile, clock)
            )
        for pbuf in buffer.values():
            pbuf.clear()
        buffered = 0

    def sink(kb: bytes, vb: bytes) -> None:
        nonlocal buffered
        if plugin is not None:
            routed = plugin.route(kb, vb, job.num_reducers)
        else:
            routed = [(partitioner.partition(kb), kb, vb)]
        for part, k2, v2 in routed:
            buffer[part].append(k2, v2)
            buffered += len(k2) + len(v2) + 8
        if buffered >= job.sort_buffer_bytes:
            flush()

    def batch_sink(keys: np.ndarray, values: np.ndarray) -> None:
        # Batched form of ``sink``: route a whole fixed-width chunk.  The
        # chunk is split at the exact record where the scalar path's
        # running ``buffered`` count would cross the spill threshold, so
        # spill boundaries -- and therefore every spill file and counter
        # -- match the scalar path record for record.
        nonlocal buffered
        n = keys.shape[0]
        rec = keys.shape[1] + values.shape[1] + 8
        start = 0
        while start < n:
            take = min(n - start,
                       -((buffered - job.sort_buffer_bytes) // rec))
            kchunk = keys[start:start + take]
            vchunk = values[start:start + take]
            if job.num_reducers == 1:
                buffer[0].append_chunk(kchunk, vchunk)
            else:
                parts = partitioner.partition_batch(kchunk)
                for part in np.unique(parts):
                    mask = parts == part
                    buffer[int(part)].append_chunk(kchunk[mask], vchunk[mask])
            buffered += take * rec
            start += take
            if buffered >= job.sort_buffer_bytes:
                flush()

    # The batched emit path bypasses the shuffle plugin's per-record
    # ``route`` hook, so it is only wired up for plugin-less jobs;
    # MapContext falls back to per-record emission otherwise.
    ctx = MapContext(
        job.key_serde, job.value_serde, sink, counters,
        batch_sink=batch_sink if (job.columnar and plugin is None) else None,
    )
    variable = dataset[split.variable]
    with clock.measure("read"):
        values = variable.read(split.slab)
    profile.input_bytes = values.nbytes
    counters.incr(C.MAP_INPUT_RECORDS, values.size)

    mapper = job.mapper()
    if getattr(mapper, "wants_dataset", False):
        # Multi-variable mappers (e.g. derived-variable queries) need
        # to read slabs of other variables alongside their split.
        mapper.dataset = dataset
    mapper.setup(split)
    with clock.measure("map"):
        if driver is None:
            mapper.map(split, values, ctx)
            mapper.cleanup(ctx)
        else:
            driver(mapper, split, values, ctx)
    flush()

    # Merge spills into the final per-partition map output segments.
    out = MapTaskOutput(task_id=task_id, profile=profile, counters=counters)
    for part in range(job.num_reducers):
        part_spills = [s[part] for s in spills if part in s]
        final_path = os.path.join(workdir, f"{task_id}-out-p{part}")
        if len(part_spills) == 1 and job.ifile_block_bytes is None:
            path, stats, _ = part_spills[0]
            os.replace(path, final_path)
        else:
            # All runs fixed-width with the same widths?  Then merge
            # columnar: decode each segment to matrices, concatenate in
            # spill order, one stable argsort, one bulk write.  A stable
            # sort of concatenated sorted runs yields exactly the
            # heapq.merge order (equal keys stay in run order).
            metas = {m for _, _, m in part_spills}
            colruns = None
            if (job.columnar and len(part_spills) > 1
                    and len(metas) == 1 and None not in metas):
                (kw, vw), = metas
                decoded = [IFileReader(path, codec).read_columnar(kw, vw)
                           for path, _, _ in part_spills]
                if all(d is not None for d in decoded):
                    colruns = decoded
            with clock.measure("merge"):
                for path, stats, _ in part_spills:
                    profile.local_read_bytes += stats.materialized_bytes
                writer = IFileWriter(final_path, codec, atomic=True,
                                     block_bytes=job.ifile_block_bytes)
                if colruns is not None:
                    kall = np.concatenate([k for k, _ in colruns])
                    vall = np.concatenate([v for _, v in colruns])
                    order = argsort_key_matrix(kall)
                    writer.append_batch(
                        np.ascontiguousarray(kall[order]),
                        np.ascontiguousarray(vall[order]),
                    )
                else:
                    runs = [IFileReader(path, codec).read_all()
                            for path, _, _ in part_spills]
                    for kb, vb in merge_runs(runs):
                        writer.append(kb, vb)
                stats = writer.close()
                for path, _, _ in part_spills:
                    os.unlink(path)
            profile.local_write_bytes += stats.materialized_bytes
        out.segments[part] = (final_path, stats)

    counters.incr(C.MAP_OUTPUT_BYTES,
                  sum(s.key_bytes + s.value_bytes for _, s in out.segments.values()))
    counters.incr(C.MAP_OUTPUT_KEY_BYTES,
                  sum(s.key_bytes for _, s in out.segments.values()))
    counters.incr(C.MAP_OUTPUT_VALUE_BYTES,
                  sum(s.value_bytes for _, s in out.segments.values()))
    counters.incr(C.MAP_OUTPUT_FILE_OVERHEAD_BYTES,
                  sum(s.overhead_bytes for _, s in out.segments.values()))
    counters.incr(C.MAP_OUTPUT_MATERIALIZED_BYTES,
                  sum(s.materialized_bytes for _, s in out.segments.values()))

    profile.cpu_seconds = clock.as_dict()
    for category, seconds in cost_categories(codec).items():
        profile.cpu_seconds[category] = (
            profile.cpu_seconds.get(category, 0.0) + seconds
        )
    return out


def run_reduce_task(
    job: Job,
    part: int,
    segments: Sequence[Any],
    workdir: str,
    keep_files: bool = False,
    *,
    segment_reader=None,
    prepare_filter=None,
    group_driver=None,
    shuffle=None,
    fetch_faults=None,
    memory=None,
) -> ReduceTaskResult:
    """Execute one reduce task (Fig 1 steps 4-7).

    ``segments`` is this partition's final map output segment per map
    task, **in map task order** -- each a :class:`~repro.mapreduce.
    runtime.shuffle.SegmentRef` (legacy ``(path, stats)`` tuples are
    adopted).  Segment bytes arrive through a shuffle transport
    (``shuffle`` is a :class:`~repro.mapreduce.runtime.shuffle.
    ShuffleConfig`; ``None`` = the default direct transport, byte-
    identical to reading the files), so the map->reduce hop is a real,
    failable transfer in every runner.  ``fetch_faults`` is this reduce
    task's slice of a fault injector's fetch plan.

    The three keyword hooks exist for the skipping runtime and default
    to ``None`` (clean path unchanged): ``segment_reader(path, codec,
    blob)`` replaces the strict segment decode (block salvage),
    ``prepare_filter(merged)`` filters undecodable records before the
    shuffle plugin sees them, and ``group_driver(reducer, merged, ctx)``
    replaces the group-and-reduce loop (per-group fault isolation).

    ``memory`` is the task's :class:`~repro.mapreduce.runtime.memory.
    MemoryBudget` (``None`` = unaccounted).  The fetcher charges each
    in-flight transfer's priced bytes under the ``"fetch"`` site; the
    decoded runs rent their payload bytes under ``"merge"`` for the
    duration of the merge-group-reduce tail.  The merge rent is an
    *enforced* charge sized from deterministic ``IFileStats``, so both
    runners overrun (and degrade) identically.
    """
    # Lazy import: the runtime package imports this module's task
    # functions, so the engine cannot import runtime modules at the top.
    from repro.mapreduce.runtime.shuffle import (
        SegmentRef,
        ShuffleConfig,
        ShuffleFetcher,
    )
    task_id = f"r{part:05d}"
    counters = Counters()
    clock = CostClock()
    profile = TaskProfile(task_id=task_id, kind="reduce")
    codec = get_codec(job.codec, **job.codec_options)

    # Shuffle: fetch this partition's segment from every map task
    # through the transport, then decode.  Each run's payload size (sum
    # of key+value bytes) is recorded once, from the segment's
    # IFileStats, so merge-pass planning below never re-scans a run's
    # records to size it.
    refs = [SegmentRef.from_pair(s) for s in segments]
    fetcher = ShuffleFetcher(
        shuffle if shuffle is not None else ShuffleConfig(),
        counters, task_id, fetch_faults, memory=memory)
    runs: list[list[Record]] = []
    run_sizes: list[int] = []
    with clock.measure("shuffle"):
        blobs = fetcher.fetch_all(refs)
        for ref, blob in zip(refs, blobs):
            profile.shuffle_bytes += ref.stats.materialized_bytes
            if segment_reader is None:
                records = IFileReader(blob, codec, path=ref.path).read_all()
            else:
                records = segment_reader(ref.path, codec, blob)
            if records:
                runs.append(records)
                run_sizes.append(ref.stats.key_bytes + ref.stats.value_bytes)
    counters.incr(C.SHUFFLE_BYTES, profile.shuffle_bytes)
    if shuffle is not None and getattr(shuffle, "transport", "") == "network":
        # The network transport measured what actually crossed the NIC
        # (wire-codec compressed); the simulator prices this instead of
        # the logical payload when present.
        profile.wire_bytes = counters.get(C.SHUFFLE_WIRE_BYTES)

    if memory is not None:
        memory.note_waits(fetcher.backpressure_waits)
    # The decoded runs stay resident through the whole merge tail; rent
    # their payload bytes (deterministic, from IFileStats) under the
    # "merge" site so the ledger sees the reduce-side peak and an ``oom``
    # fault aimed at the merge has a charge to fire on.
    rent = (memory.rent(sum(run_sizes), site="merge")
            if memory is not None else nullcontext())
    with rent:
        return _merge_group_reduce(job, task_id, runs, run_sizes, workdir,
                                   codec, counters, clock, profile,
                                   keep_files,
                                   prepare_filter=prepare_filter,
                                   group_driver=group_driver)


def _merge_group_reduce(
    job: Job,
    task_id: str,
    runs: list[list[Record]],
    run_sizes: list[int],
    workdir: str,
    codec,
    counters: Counters,
    clock: CostClock,
    profile: TaskProfile,
    keep_files: bool,
    *,
    prepare_filter=None,
    group_driver=None,
) -> ReduceTaskResult:
    """Fig 1 steps 5-7: merge fetched runs, group, reduce, write output.

    The single tail shared by the barrier reduce path above and the
    pipelined path (:func:`~repro.mapreduce.runtime.pipeline.
    run_reduce_task_pipelined`): given the decoded non-empty runs **in
    the order the barrier path would hold them**, both produce
    byte-identical merged streams, counters, and output.
    """
    # Multi-pass on-disk merge when we hold too many runs (step 5).
    passes = plan_merge_passes(len(runs), job.merge_factor)
    for pass_idx, take in enumerate(passes):
        # Merge the smallest runs first (Hadoop's policy).  Sorting the
        # cached sizes is O(runs log runs); the previous implementation
        # recomputed every run's size by walking all of its records on
        # every pass.  Python's sort is stable, so ties keep arrival
        # order -- the same order the re-scanning version produced.
        paired = sorted(zip(run_sizes, runs), key=lambda t: t[0])
        victims = [r for _, r in paired[:take]]
        runs = [r for _, r in paired[take:]]
        run_sizes = [s for s, _ in paired[take:]]
        path = os.path.join(workdir, f"{task_id}-merge{pass_idx}")
        with clock.measure("merge"):
            writer = IFileWriter(path, codec)
            for kb, vb in merge_runs(victims):
                writer.append(kb, vb)
            stats = writer.close()
            profile.local_write_bytes += stats.materialized_bytes
            counters.incr(C.MERGE_PASS_BYTES, stats.materialized_bytes)
            merged_back = IFileReader(path, codec).read_all()
            profile.local_read_bytes += stats.materialized_bytes
        os.unlink(path)
        runs.append(merged_back)
        run_sizes.append(stats.key_bytes + stats.value_bytes)

    with clock.measure("merge"):
        merged = list(merge_runs(runs))

    if prepare_filter is not None:
        merged = prepare_filter(merged)

    if job.shuffle_plugin is not None:
        with clock.measure("split"):
            before = len(merged)
            merged = job.shuffle_plugin.prepare_reduce(merged)
            counters.incr(C.KEY_SPLITS, max(0, len(merged) - before))

    reducer = job.reducer()
    ctx = ReduceContext(counters)
    with clock.measure("reduce"):
        if group_driver is None:
            for kb, value_blobs in group_by_key(merged):
                counters.incr(C.REDUCE_INPUT_GROUPS)
                counters.incr(C.REDUCE_INPUT_RECORDS, len(value_blobs))
                key = job.key_serde.from_bytes(kb)
                values = job.value_serde.read_batch(value_blobs)
                reducer.reduce(key, values, ctx)
        else:
            group_driver(reducer, merged, ctx)

    profile.cpu_seconds = clock.as_dict()
    for category, seconds in cost_categories(codec).items():
        profile.cpu_seconds[category] = (
            profile.cpu_seconds.get(category, 0.0) + seconds
        )
    if job.output_key_serde is not None and job.output_value_serde is not None:
        # Write a real part file (Fig 1 step 7) so output bytes are
        # measured, not estimated.
        part_path = os.path.join(workdir, f"{task_id}-part")
        writer = IFileWriter(part_path, codec)
        for k, v in ctx.output:
            kout = bytearray()
            job.output_key_serde.write(k, kout)
            vout = bytearray()
            job.output_value_serde.write(v, vout)
            writer.append(bytes(kout), bytes(vout))
        part_stats = writer.close()
        profile.output_bytes = part_stats.materialized_bytes
        if not keep_files:
            os.unlink(part_path)
    else:
        profile.output_bytes = sum(
            len(repr(k)) + len(repr(v)) for k, v in ctx.output
        )
    return ReduceTaskResult(task_id=task_id, output=ctx.output,
                            counters=counters, profile=profile)


# -------------------------------------------------------------------- runner


class LocalJobRunner:
    """Run :class:`~repro.mapreduce.job.Job` objects against a dataset.

    Executes every task serially in-process.  Usable as a context
    manager: leaving the ``with`` block removes an owned (auto-created)
    workdir even when files were kept or a task failed.

    ``fault_injector`` accepts the data-shaped faults that make sense
    without worker processes -- ``poison``, ``corrupt``, and ``fetch``
    -- so the same failure ladder (strict attempt -> repair segment ->
    skipping mode -> quarantine) can be exercised and compared
    byte-for-byte against the parallel runtime.  Process-level modes
    (``kill`` / ``crash`` / ``hang`` / ``stall``) are rejected: there
    is no worker process to kill.

    ``shuffle`` selects the transport reducers fetch map segments
    through (default: direct reads).  A reduce whose fetch retries are
    exhausted charges the producing map a strike; at
    ``fetch_failure_threshold`` strikes the map is re-executed in place
    (bumping its fetch *epoch*, which is how epoch-pinned fetch faults
    stop applying), at most ``max_map_reexecs`` times per map -- the
    same escalation the parallel scheduler performs across processes.

    Host-level faults are also honored, keyed by the stable task->host
    hash (``num_hosts`` buckets): ``host_crash`` re-executes every
    completed map homed on the host at the shuffle barrier (at most
    ``max_host_reexecs`` per host), ``host_partition`` expands into
    deterministic per-link fetch drops healed by the retry ladder, and
    ``disk_fault`` fails the affected tasks' spills over to a spare
    workdir, quarantining the bad one -- each byte-identical in output
    and counters to the parallel runtime's handling.
    """

    def __init__(self, workdir: str | None = None, keep_files: bool = False,
                 fault_injector: Any = None, *,
                 shuffle: Any = None,
                 fetch_failure_threshold: int = 2,
                 max_map_reexecs: int = 2,
                 num_hosts: int = 2,
                 max_host_reexecs: int = 2) -> None:
        if fetch_failure_threshold < 1:
            raise ValueError(
                f"fetch_failure_threshold must be >= 1, "
                f"got {fetch_failure_threshold}")
        if max_map_reexecs < 0:
            raise ValueError(
                f"max_map_reexecs must be >= 0, got {max_map_reexecs}")
        if num_hosts < 1:
            raise ValueError(f"num_hosts must be >= 1, got {num_hosts}")
        if max_host_reexecs < 0:
            raise ValueError(
                f"max_host_reexecs must be >= 0, got {max_host_reexecs}")
        self._own_workdir = workdir is None
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-mr-")
        self.keep_files = keep_files
        self.fault_injector = fault_injector
        self.shuffle = shuffle
        self.fetch_failure_threshold = fetch_failure_threshold
        self.max_map_reexecs = max_map_reexecs
        self.num_hosts = num_hosts
        self.max_host_reexecs = max_host_reexecs
        #: planned disk faults by home host (populated per run)
        self._disk_plan: dict[str, Any] = {}
        #: ledger telemetry accumulated across tasks (reset per run)
        self._memory_tally: dict[str, Any] = {
            "oom_events": 0, "degraded_attempts": 0, "peak_bytes": 0,
            "backpressure_waits": 0, "used_budget": False}
        os.makedirs(self.workdir, exist_ok=True)

    def __enter__(self) -> "LocalJobRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Remove an owned workdir (no-op for caller-supplied dirs)."""
        if self._own_workdir and os.path.isdir(self.workdir):
            shutil.rmtree(self.workdir, ignore_errors=True)

    def run(
        self,
        job: Job,
        dataset: Dataset,
        splits: Sequence[InputSplit] | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``dataset``; returns outputs and metrics."""
        # A runner may be reused across jobs; cleanup after a previous run
        # may have removed an (empty) owned workdir.
        os.makedirs(self.workdir, exist_ok=True)
        if splits is None:
            variables = (list(job.input_variables)
                         if job.input_variables is not None else None)
            splits = ArraySplitter(job.num_map_tasks).split(dataset, variables)
        if not splits:
            raise ValueError("job has no input splits")

        # Snapshot the workdir so a failing task can be cleaned up without
        # disturbing pre-existing (caller-owned) files.
        preexisting = set(os.listdir(self.workdir))
        try:
            return self._run_all(job, dataset, splits)
        except BaseException:
            self._remove_new_files(preexisting)
            raise

    def _run_all(self, job: Job, dataset: Dataset,
                 splits: Sequence[InputSplit]) -> JobResult:
        counters = Counters()
        profiles: list[TaskProfile] = []
        map_stats = IFileStats()
        self._memory_tally = {
            "oom_events": 0,
            "degraded_attempts": 0,
            "peak_bytes": 0,
            "backpressure_waits": 0,
            "used_budget": False,
        }

        host_plan = self._prepare_host_faults(job, splits)

        map_outputs: list[MapTaskOutput] = []
        for split in splits:
            mo = self._run_map(job, split, dataset)
            map_outputs.append(mo)
            counters.merge(mo.counters)
            profiles.append(mo.profile)
            for _, stats in mo.segments.values():
                map_stats.merge(stats)

        # Fetch-failure escalation state shared across partitions: one
        # map's strikes accumulate over every reduce that fails to fetch
        # it, and an epoch bump is visible to all later partitions.  With
        # the network transport, the state also carries the live shuffle
        # service so reduce refs can be addressed and re-executions
        # re-registered.
        shuffle_state = {
            "strikes": {mo.task_id: 0 for mo in map_outputs},
            "epochs": {mo.task_id: 0 for mo in map_outputs},
            "reexecs": {mo.task_id: 0 for mo in map_outputs},
            "total_reexecs": 0,
            "service": None,
        }
        service = self._make_shuffle_service()
        output: list[tuple[Any, Any]] = []
        hosts_lost = 0
        host_reexecs = 0
        try:
            if service is not None:
                service.start()
                shuffle_state["service"] = service
                for mo in map_outputs:
                    service.register_map_output(
                        mo.task_id,
                        [path for path, _ in mo.segments.values()], epoch=0)
            # Shuffle barrier: whole-host crashes land here, exactly
            # where Hadoop's lost-tasktracker handling runs -- every
            # completed map whose only segment copies lived on the dead
            # host is re-executed before any reducer fetches.
            hosts_lost, host_reexecs = self._apply_host_crashes(
                job, dataset, splits, map_outputs, shuffle_state, host_plan)
            if self.shuffle is not None and getattr(self.shuffle,
                                                    "pipeline", False):
                # Serial pipeline mode: publish a fully-populated commit
                # log (maps are all done here, at their final epochs)
                # and run reduces through the pipelined body -- the
                # degenerate no-overlap case, byte-identical to the
                # barrier path and counter-comparable with a pipelined
                # parallel run.
                self._publish_commit_log(map_outputs, shuffle_state)
            pipeline_per_task: list[dict] = []
            for part in range(job.num_reducers):
                rr = self._run_reduce(job, part, map_outputs, dataset, splits,
                                      shuffle_state)
                output.extend(rr.output)
                counters.merge(rr.counters)
                profiles.append(rr.profile)
                if rr.pipeline is not None:
                    pipeline_per_task.append(rr.pipeline)
        finally:
            if service is not None:
                service.stop()
        if shuffle_state["total_reexecs"]:
            # Job-level event, like the parallel runner: task counters of
            # a re-executed map are identical by determinism.
            counters.incr(C.MAPS_REEXECUTED, shuffle_state["total_reexecs"])
        if hosts_lost:
            counters.incr(C.HOSTS_LOST, hosts_lost)
        if host_reexecs:
            counters.incr(C.MAPS_REEXECUTED_HOST, host_reexecs)
        if self._disk_plan:
            # One failover per task homed on a disk-faulted host -- a
            # pure function of the plan, so the parallel runner counts
            # the identical number without plumbing worker flags.
            from repro.mapreduce.runtime.hosts import host_for
            task_ids = ([mo.task_id for mo in map_outputs]
                        + [f"r{p:05d}" for p in range(job.num_reducers)])
            affected = sum(1 for t in task_ids
                           if host_for(t, self.num_hosts) in self._disk_plan)
            if affected:
                counters.incr(C.DISK_FAILOVERS, affected)
        if self._memory_tally["oom_events"]:
            # Job-level, like MAPS_REEXECUTED: deterministic under an
            # injected fault plan, so serial and parallel runs count
            # identically; clean runs leave them zero (== absent).
            counters.incr(C.MEMORY_OOM_EVENTS,
                          self._memory_tally["oom_events"])
            counters.incr(C.MEMORY_DEGRADED_ATTEMPTS,
                          self._memory_tally["degraded_attempts"])

        if not self.keep_files:
            self._cleanup(map_outputs)

        pipeline_stats = None
        if pipeline_per_task:
            from repro.mapreduce.runtime.pipeline import (
                aggregate_pipeline_stats,
            )
            pipeline_stats = aggregate_pipeline_stats(pipeline_per_task)
        memory_stats = None
        if self._memory_tally["used_budget"]:
            memory_stats = {
                "budget": (getattr(self.shuffle, "memory_budget", None)
                           if self.shuffle is not None else None),
                "peak_bytes": self._memory_tally["peak_bytes"],
                "backpressure_waits":
                    self._memory_tally["backpressure_waits"],
                "oom_events": self._memory_tally["oom_events"],
                "degraded_attempts":
                    self._memory_tally["degraded_attempts"],
            }
        return JobResult(
            output=output,
            counters=counters,
            task_profiles=profiles,
            map_output_stats=map_stats,
            num_map_tasks=len(splits),
            num_reduce_tasks=job.num_reducers,
            pipeline_stats=pipeline_stats,
            memory_stats=memory_stats,
        )

    # ------------------------------------------------------------- ladder
    #
    # The serial failure ladder mirrors the parallel runtime's: a strict
    # first attempt (zero overhead on the clean path), then -- for
    # skip-eligible failures under a job SkipPolicy -- a retry in
    # record-level skipping mode, and -- for whole-segment corruption --
    # an in-place repair of the producing map task followed by a strict
    # retry.  The runtime modules are imported lazily because they in
    # turn import the task functions defined above.

    def _make_shuffle_service(self):
        """A started-on-demand network shuffle service, or ``None``.

        Serial jobs over ``transport="network"`` run real loopback
        segment servers so the wire path (and its counters) is
        byte-comparable with the parallel runtime's.
        """
        if (self.shuffle is None
                or getattr(self.shuffle, "transport", "") != "network"):
            return None
        from repro.mapreduce.runtime.netshuffle import ShuffleService
        faults = (self.fault_injector.fetch_plan()
                  if self.fault_injector is not None else None)
        return ShuffleService.from_config(self.shuffle, faults=faults)

    def _publish_commit_log(self, map_outputs: Sequence[MapTaskOutput],
                            shuffle_state: dict[str, Any]) -> None:
        """Write every map's commit record at its final (post-host-crash)
        epoch; reduces then consume the pipelined body against a complete
        completion-event stream."""
        from repro.mapreduce.runtime.pipeline import (
            COMMITS_DIRNAME,
            CommitLog,
            CommitRecord,
        )
        commit_dir = os.path.join(self.workdir, COMMITS_DIRNAME)
        shutil.rmtree(commit_dir, ignore_errors=True)
        log = CommitLog(commit_dir)
        service = shuffle_state.get("service")
        for mo in map_outputs:
            log.commit(CommitRecord(
                map_id=mo.task_id,
                epoch=shuffle_state["epochs"][mo.task_id],
                segments=dict(mo.segments),
                address=(service.address_for(mo.task_id)
                         if service is not None else None)))
        shuffle_state["commitlog"] = log
        shuffle_state["commit_dir"] = commit_dir

    def _prepare_host_faults(self, job: Job,
                             splits: Sequence[InputSplit]) -> dict[str, Any]:
        """Snapshot the host-level fault plan and expand partitions.

        ``host_partition`` faults are rewritten into deterministic
        per-link fetch ``drop`` faults (clamped to the transport's retry
        budget, so every link heals in-attempt) *before* any transport
        or shuffle service snapshots the fetch plan -- retry counters
        become pure functions of the plan, byte-identical to the
        parallel runner's.  ``disk_fault`` entries populate
        ``self._disk_plan`` so task bodies fail over to spare workdirs.
        """
        injector = self.fault_injector
        if injector is None or not hasattr(injector, "host_plan"):
            self._disk_plan = {}
            return {}
        host_plan = injector.host_plan()
        self._disk_plan = {h: f for h, f in host_plan.items()
                           if f.mode == "disk_fault"}
        partitions = sorted((h, f) for h, f in host_plan.items()
                            if f.mode == "host_partition")
        if partitions:
            from repro.mapreduce.runtime.hosts import expand_host_partition
            retries = (getattr(self.shuffle, "fetch_retries", 3)
                       if self.shuffle is not None else 3)
            map_ids = [f"m{s.split_id:05d}" for s in splits]
            reduce_ids = [f"r{p:05d}" for p in range(job.num_reducers)]
            for host, fault in partitions:
                expand_host_partition(
                    injector, host, map_ids, reduce_ids, self.num_hosts,
                    drops=min(max(1, fault.record), retries))
        return host_plan

    def _task_workdir(self, task_id: str) -> str:
        """Where this task's files live: the runner workdir, or -- when
        the task's home host has a planned ``disk_fault`` -- the spare
        volume the failover provisions (marker + quarantine side-file
        written on first use, idempotently)."""
        if not self._disk_plan:
            return self.workdir
        from repro.mapreduce.runtime.hosts import (
            host_for,
            provision_failover_workdir,
        )
        host = host_for(task_id, self.num_hosts)
        fault = self._disk_plan.get(host)
        if fault is None:
            return self.workdir
        return provision_failover_workdir(self.workdir, task_id, host, fault)

    def _apply_host_crashes(
        self,
        job: Job,
        dataset: Dataset,
        splits: Sequence[InputSplit],
        map_outputs: list[MapTaskOutput],
        shuffle_state: dict[str, Any],
        host_plan: dict[str, Any],
    ) -> tuple[int, int]:
        """Serial mirror of losing whole hosts at the shuffle barrier.

        For each planned ``host_crash``: the host's segment server dies
        with it (network transport), and every completed map homed there
        is proactively re-executed at a bumped epoch -- bounded by
        ``max_host_reexecs`` completed maps per lost host.  Returns
        ``(hosts_lost, maps_reexecuted)`` for the job-level counters.
        """
        crash_hosts = sorted(h for h, f in host_plan.items()
                             if f.mode == "host_crash")
        if not crash_hosts:
            return 0, 0
        from repro.mapreduce.runtime.hosts import HostLostError, host_for
        service = shuffle_state.get("service")
        by_id = {mo.task_id: i for i, mo in enumerate(map_outputs)}
        reexecs = 0
        for host in crash_hosts:
            lost = [mo.task_id for mo in map_outputs
                    if host_for(mo.task_id, self.num_hosts) == host]
            if len(lost) > self.max_host_reexecs:
                raise HostLostError(
                    f"{host} lost {len(lost)} completed maps, exceeding "
                    f"max_host_reexecs={self.max_host_reexecs}")
            if service is not None:
                index = int(host.removeprefix("host"))
                if index < service.num_servers:
                    # The host's segment server dies with it; the fresh
                    # registrations below re-spawn it (the re-executed
                    # maps "run elsewhere" and re-publish).
                    service.kill_server(index)
            for map_id in lost:
                if service is not None:
                    service.invalidate(map_id)
                shuffle_state["epochs"][map_id] += 1
                old = map_outputs[by_id[map_id]]
                for path, _ in old.segments.values():
                    try:
                        os.unlink(path)
                    except OSError:  # pragma: no cover - already gone
                        pass
                split = next(
                    s for s in splits if f"m{s.split_id:05d}" == map_id)
                mo = run_map_task(job, split, dataset,
                                  self._task_workdir(map_id))
                map_outputs[by_id[map_id]] = mo
                if service is not None:
                    service.register_map_output(
                        map_id, [path for path, _ in mo.segments.values()],
                        epoch=shuffle_state["epochs"][map_id])
                reexecs += 1
        return len(crash_hosts), reexecs

    def _serial_fault(self, task_id: str, attempt: int):
        """The injected fault for this attempt, if the serial runner can
        apply it (only data-shaped faults: ``poison``, ``corrupt``, and
        ``oom`` -- an in-process ``MemoryError`` needs no worker)."""
        if self.fault_injector is None:
            return None
        fault = self.fault_injector.fault_for(task_id, attempt)
        if fault is not None and fault.mode not in ("poison", "corrupt",
                                                    "oom"):
            raise ValueError(
                f"fault mode {fault.mode!r} is not supported by the "
                f"serial runner (no worker process to fail)")
        return fault

    def _max_memory_retries(self) -> int:
        """OOM-dead attempts of one task the degrade ladder absorbs."""
        if self.shuffle is not None:
            return getattr(self.shuffle, "max_memory_retries", 2)
        return 2

    def _memory_setup(self, job: Job, fault: Any, degrade: int):
        """The (degraded) job, shuffle config, and armed task budget for
        one serial attempt.

        ``degrade`` is how many OOM deaths this task has already
        suffered: each level deterministically halves the sort buffer
        (floored at the Job minimum) and the fetch byte window -- the
        identical formula the parallel scheduler applies, so injected
        OOM runs stay counter-identical across runners.
        """
        shuffle = self.shuffle
        if degrade:
            job = dc_replace(job, sort_buffer_bytes=max(
                1024, job.sort_buffer_bytes >> degrade))
            mib = (getattr(shuffle, "max_inflight_bytes", None)
                   if shuffle is not None else None)
            if mib is not None:
                shuffle = dc_replace(
                    shuffle, max_inflight_bytes=max(1, mib >> degrade))
        capacity = (getattr(shuffle, "memory_budget", None)
                    if shuffle is not None else None)
        oom = fault is not None and fault.mode == "oom"
        if capacity is None and not oom:
            return job, shuffle, None
        from repro.mapreduce.runtime.memory import MemoryBudget
        budget = MemoryBudget(capacity)
        if oom:
            if fault.op == "raise":
                budget.fail_next(fault.where)
            elif fault.op == "alloc":
                budget.alloc_next(fault.where, fault.record)
            else:  # "kill": no process to SIGKILL in-process, so the
                # simulated OOM killer surfaces as a MemoryError and
                # takes the same degrade ladder
                def _killed(nbytes: int, _site: str = fault.where) -> None:
                    raise MemoryError(
                        f"simulated oom kill: {_site} charged {nbytes} "
                        f"bytes over threshold")
                budget.kill_above(fault.record, _killed, site=fault.where)
        return job, shuffle, budget

    def _note_budget(self, budget: Any) -> None:
        """Fold one winning attempt's ledger telemetry into the run."""
        if budget is None:
            return
        tally = self._memory_tally
        tally["used_budget"] = True
        tally["peak_bytes"] = max(tally["peak_bytes"], budget.peak)
        tally["backpressure_waits"] += budget.backpressure_waits

    def _run_map(self, job: Job, split: InputSplit,
                 dataset: Dataset) -> MapTaskOutput:
        """One map task through the serial failure ladder."""
        from repro.mapreduce.runtime.fault import corrupt_file, poisoned_job
        from repro.mapreduce.runtime.skipping import (
            is_skip_eligible,
            run_map_task_skipping,
        )
        task_id = f"m{split.split_id:05d}"
        workdir = self._task_workdir(task_id)
        attempt = 0
        skip_mode = False
        degrade = 0
        while True:
            fault = self._serial_fault(task_id, attempt)
            eff = (poisoned_job(job, fault, "map")
                   if fault is not None and fault.mode == "poison" else job)
            eff, _, budget = self._memory_setup(eff, fault, degrade)
            try:
                if skip_mode:
                    mo = run_map_task_skipping(eff, split, dataset,
                                               workdir)
                else:
                    mo = run_map_task(eff, split, dataset, workdir,
                                      memory=budget)
            except MemoryError:
                # OOM (injected or budget overrun): retry with a
                # deterministically halved sort buffer, bounded by the
                # memory retry budget -- the degrade-on-retry ladder.
                if degrade >= self._max_memory_retries():
                    raise
                self._memory_tally["oom_events"] += 1
                self._memory_tally["degraded_attempts"] += 1
                degrade += 1
                attempt += 1
                continue
            except Exception as exc:
                if (skip_mode or job.skipping is None
                        or not is_skip_eligible(exc)):
                    raise
                skip_mode = True
                attempt += 1
                continue
            if fault is not None and fault.mode == "corrupt" \
                    and fault.where == "map-output":
                target = (fault.segment if fault.segment in mo.segments
                          else min(mo.segments))
                corrupt_file(mo.segments[target][0], fault.offset_frac,
                             fault.op)
            self._note_budget(budget)
            return mo

    def _run_reduce(self, job: Job, part: int,
                    map_outputs: Sequence[MapTaskOutput],
                    dataset: Dataset,
                    splits: Sequence[InputSplit],
                    shuffle_state: dict[str, Any]) -> ReduceTaskResult:
        """One reduce task through the serial failure ladder."""
        from repro.mapreduce.runtime.fault import corrupt_file, poisoned_job
        from repro.mapreduce.runtime.shuffle import FetchFailedError, SegmentRef
        from repro.mapreduce.runtime.skipping import (
            is_skip_eligible,
            run_reduce_task_skipping,
        )
        task_id = f"r{part:05d}"
        workdir = self._task_workdir(task_id)

        def build_refs() -> list[SegmentRef]:
            epochs = shuffle_state["epochs"]
            service = shuffle_state.get("service")
            return [SegmentRef(map_id=mo.task_id,
                               path=mo.segments[part][0],
                               stats=mo.segments[part][1],
                               epoch=epochs[mo.task_id],
                               address=(service.address_for(mo.task_id)
                                        if service is not None else None))
                    for mo in map_outputs]

        segments = build_refs()
        fetch_faults = (self.fault_injector.fetch_plan_for(task_id) or None
                        if self.fault_injector is not None else None)
        first = self._serial_fault(task_id, 0)
        if first is not None and first.mode == "corrupt" \
                and first.where == "reduce-input" and segments:
            index = first.segment if first.segment is not None else 0
            corrupt_file(segments[index % len(segments)].path,
                         first.offset_frac, first.op)
        attempt = 0
        skip_mode = False
        repairs = 0
        degrade = 0
        while True:
            fault = self._serial_fault(task_id, attempt)
            eff = (poisoned_job(job, fault, "reduce")
                   if fault is not None and fault.mode == "poison" else job)
            eff, eff_shuffle, budget = self._memory_setup(eff, fault, degrade)
            try:
                if skip_mode:
                    return run_reduce_task_skipping(
                        eff, part, segments, workdir,
                        keep_files=self.keep_files,
                        shuffle=eff_shuffle, fetch_faults=fetch_faults)
                if shuffle_state.get("commitlog") is not None:
                    # Pipelined body over the (complete) commit log:
                    # corrupt-at-rest decode errors and fetch failures
                    # surface identically and take the same ladder.
                    from repro.mapreduce.runtime.pipeline import (
                        PipelinePlan,
                        run_reduce_task_pipelined,
                    )
                    plan = PipelinePlan(
                        commit_dir=shuffle_state["commit_dir"],
                        map_ids=tuple(mo.task_id for mo in map_outputs))
                    rr = run_reduce_task_pipelined(
                        eff, part, plan, workdir,
                        keep_files=self.keep_files,
                        shuffle=eff_shuffle, fetch_faults=fetch_faults,
                        memory=budget)
                else:
                    rr = run_reduce_task(eff, part, segments, workdir,
                                         keep_files=self.keep_files,
                                         shuffle=eff_shuffle,
                                         fetch_faults=fetch_faults,
                                         memory=budget)
                self._note_budget(budget)
                return rr
            except MemoryError:
                # OOM: degrade-on-retry, same halving as the map side
                # (and as the parallel scheduler's requeue).
                if degrade >= self._max_memory_retries():
                    raise
                self._memory_tally["oom_events"] += 1
                self._memory_tally["degraded_attempts"] += 1
                degrade += 1
                attempt += 1
                continue
            except Exception as exc:
                if isinstance(exc, FetchFailedError):
                    # Charge the producing map a strike; at the
                    # threshold re-execute it (bumping its epoch), then
                    # retry this reduce against rebuilt references --
                    # the serial mirror of the scheduler's escalation.
                    self._handle_fetch_failure(exc, job, dataset, splits,
                                               shuffle_state)
                    segments = build_refs()
                    attempt += 1
                    continue
                skippable = (job.skipping is not None
                             and is_skip_eligible(exc))
                if skippable and not skip_mode:
                    skip_mode = True
                    attempt += 1
                    continue
                if (isinstance(exc, IFileCorruptError) and not skippable
                        and exc.path is not None
                        and repairs < len(segments)):
                    self._repair_segment(exc.path, job, dataset, splits)
                    repairs += 1
                    attempt += 1
                    continue
                raise

    def _handle_fetch_failure(self, exc: Any, job: Job, dataset: Dataset,
                              splits: Sequence[InputSplit],
                              shuffle_state: dict[str, Any]) -> None:
        """Strike accounting and in-place map re-execution.

        Re-raises the fetch failure once the map has been re-executed
        ``max_map_reexecs`` times and its segments still cannot be
        fetched -- the serial analogue of the scheduler's
        :class:`~repro.mapreduce.runtime.scheduler.TaskFailedError`.
        """
        map_id = exc.map_id
        strikes = shuffle_state["strikes"]
        strikes[map_id] = strikes.get(map_id, 0) + 1
        if strikes[map_id] < self.fetch_failure_threshold:
            return  # retry the fetch before escalating
        if shuffle_state["reexecs"][map_id] >= self.max_map_reexecs:
            raise exc
        strikes[map_id] = 0
        shuffle_state["reexecs"][map_id] += 1
        shuffle_state["epochs"][map_id] += 1
        shuffle_state["total_reexecs"] += 1
        split = next(
            (s for s in splits if f"m{s.split_id:05d}" == map_id), None)
        if split is None:
            raise RuntimeError(f"fetch failure names unknown map {map_id}")
        service = shuffle_state.get("service")
        if service is not None:
            # Graceful drain: requests for the old epoch get a clean
            # transient rejection while the replacement is produced.
            service.invalidate(map_id)
        # Deterministic re-run into the map's workdir (its spare volume
        # when a disk fault failed it over) recreates every segment at
        # its fixed path with identical bytes (faults are not applied
        # during re-execution, matching the parallel runtime).
        mo = run_map_task(job, split, dataset, self._task_workdir(map_id))
        if service is not None:
            # Re-registration ends the drain at the new epoch and
            # re-spawns the hosting server if it died.
            service.register_map_output(
                map_id, [path for path, _ in mo.segments.values()],
                epoch=shuffle_state["epochs"][map_id])
        log = shuffle_state.get("commitlog")
        if log is not None:
            # Re-publish the commit record at the bumped epoch so the
            # pipelined retry fetches the fresh segments.
            from repro.mapreduce.runtime.pipeline import CommitRecord
            log.commit(CommitRecord(
                map_id=map_id,
                epoch=shuffle_state["epochs"][map_id],
                segments=dict(mo.segments),
                address=(service.address_for(map_id)
                         if service is not None else None)))

    def _repair_segment(self, corrupt_path: str, job: Job, dataset: Dataset,
                        splits: Sequence[InputSplit]) -> None:
        """Re-generate a corrupt final map segment in place.

        Map tasks are deterministic and the serial runner keeps every
        final segment at a fixed path in its workdir, so re-running the
        producing map task recreates the damaged file (and its siblings)
        with identical bytes -- the reduce retry picks them up as if
        nothing happened.  Faults are never applied during a repair,
        matching the parallel runtime (repairs run in the scheduler
        process, outside the injection plan).
        """
        name = os.path.basename(corrupt_path)
        task_id = name.split("-out-")[0]
        split = next(
            (s for s in splits if f"m{s.split_id:05d}" == task_id), None)
        if split is None:
            raise RuntimeError(
                f"corrupt segment {corrupt_path} matches no map task")
        run_map_task(job, split, dataset, self._task_workdir(task_id))

    def _remove_new_files(self, preexisting: set[str]) -> None:
        """Delete everything a failed run left behind in the workdir."""
        if not os.path.isdir(self.workdir):
            return
        for name in set(os.listdir(self.workdir)) - preexisting:
            path = os.path.join(self.workdir, name)
            if os.path.isdir(path):
                shutil.rmtree(path, ignore_errors=True)
            else:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - already gone
                    pass
        if self._own_workdir and not os.listdir(self.workdir):
            shutil.rmtree(self.workdir, ignore_errors=True)

    def _cleanup(self, map_outputs: Sequence[MapTaskOutput]) -> None:
        for mo in map_outputs:
            for path, _ in mo.segments.values():
                if os.path.exists(path):
                    os.unlink(path)
        for name in ("_commits", "_starved"):
            path = os.path.join(self.workdir, name)
            if os.path.isdir(path):
                shutil.rmtree(path, ignore_errors=True)
            elif os.path.exists(path):
                os.unlink(path)
        if self._disk_plan:
            # Disk-failover artifacts are run state, not user output:
            # the (now empty) spare volume and the quarantine marker.
            from repro.mapreduce.runtime.hosts import DISK_MARKER
            spare = os.path.join(self.workdir, "spare")
            if os.path.isdir(spare):
                shutil.rmtree(spare, ignore_errors=True)
            marker = os.path.join(self.workdir, DISK_MARKER)
            if os.path.exists(marker):
                os.unlink(marker)
        if self._own_workdir and os.path.isdir(self.workdir):
            if not os.listdir(self.workdir):
                shutil.rmtree(self.workdir, ignore_errors=True)
