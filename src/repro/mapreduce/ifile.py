"""Hadoop IFile-compatible intermediate file format.

Each record is framed as ``<vint key_len><vint value_len><key><value>``;
the stream ends with an EOF marker (two ``vint(-1)`` bytes) and a 4-byte
CRC32.  That framing is the "non-zero overhead per key/value pair" Fig 8
charges to "File overhead": 2 bytes per small record plus a 6-byte
trailer, which is exactly how the paper's 26,000,006-byte file decomposes
(10^6 records x (2 + 20 + 4) + 6).

The writer optionally compresses the whole record stream through a
pluggable :class:`~repro.mapreduce.codecs.Codec` -- the hook the paper's
§III codec plugs into -- and reports a byte-accounting breakdown
(:class:`IFileStats`) so experiments can print the values/keys/overhead
split of Fig 8 directly.

Chunked block format
--------------------
A second, opt-in layout (``block_bytes=...`` on the writer) chops the
record stream into independently compressed blocks of roughly
``block_bytes`` raw bytes, each with its own CRC32, plus a checksummed
footer describing every block::

    MAGIC(4) | comp_block_0 | ... | comp_block_k | footer
             | footer_len (4B BE) | footer_crc32 (4B BE)

    footer = vint nblocks, then per block:
             vint records, vint raw_len, vint comp_len, crc32 (4B BE)

Records never span blocks.  A bit-flip now localizes to one block: the
reader raises :class:`IFileBlockCorruptError` naming the block, and
:meth:`IFileReader.read_salvage` recovers every healthy block so the
skipping runtime quarantines only the damaged records instead of
re-running the producing map task (whole-segment repair).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.mapreduce.codecs import Codec, NullCodec
from repro.util.bytebuf import ByteBuffer
from repro.util.errors import CorruptRecordError, MalformedRecordError
from repro.util.fsio import atomic_write_bytes
from repro.util.varint import read_vlong, write_vlong

__all__ = [
    "IFileStats",
    "IFileWriter",
    "IFileReader",
    "IFileCorruptError",
    "IFileBlockCorruptError",
    "BadBlock",
    "SegmentDigest",
    "segment_digest",
    "BLOCK_MAGIC",
    "EOF_MARKER_BYTES",
    "TRAILER_BYTES",
]


class IFileCorruptError(CorruptRecordError):
    """A segment failed its integrity checks (checksum, framing, EOF).

    Carries the offending ``path`` (when the segment was read from a
    file) so a task runtime can identify *which* map output to
    re-execute -- Hadoop's fetch-failure -> re-run-the-mapper protocol.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        super().__init__(message if path is None else f"{message}: {path}")
        self.path = path


class IFileBlockCorruptError(IFileCorruptError):
    """One block of a chunked segment failed its CRC or decode.

    Unlike :class:`IFileCorruptError` this is *recoverable without the
    producing task*: the rest of the segment is intact, so a reader can
    salvage it via :meth:`IFileReader.read_salvage` and quarantine only
    the ``records_lost`` records of block ``block_index``.
    """

    def __init__(self, message: str, path: str | None = None,
                 block_index: int | None = None,
                 records_lost: int = 0) -> None:
        if block_index is not None:
            message = f"{message} (block {block_index})"
        super().__init__(message, path)
        self.block_index = block_index
        self.records_lost = records_lost


@dataclass(frozen=True)
class BadBlock:
    """A corrupt block surfaced by :meth:`IFileReader.read_salvage`.

    ``records`` is the record count the footer promised for the block
    (what was lost); ``raw`` is the compressed block bytes as stored, for
    quarantine side-files.
    """

    index: int
    records: int
    raw: bytes


@dataclass(frozen=True)
class SegmentDigest:
    """Cheap transfer-verification metadata for one segment.

    Both IFile layouts end in a big-endian CRC32 (the stream checksum
    for the plain layout, the footer checksum for the chunked layout),
    so ``(length, trailing CRC)`` identifies a segment's bytes without
    decompressing or decoding anything.  The shuffle transport sends
    this ahead of the chunk stream; the receiver re-derives it from the
    assembled bytes to detect truncated or spliced transfers.
    """

    length: int
    crc: int

    def matches(self, blob: bytes) -> bool:
        """Whether ``blob`` is plausibly the digested segment."""
        return (len(blob) == self.length and self.length >= 4
                and int.from_bytes(blob[-4:], "big") == self.crc)


def segment_digest(source: str | os.PathLike | bytes) -> SegmentDigest:
    """Digest a segment file (or its bytes) without a full decode.

    For a path this is one ``stat`` plus a 4-byte read at the tail --
    the fetcher-side cost of transfer verification is O(1) regardless
    of segment size.  A segment too short to even carry its trailer
    raises :class:`IFileCorruptError` (a truncated footer must never
    surface as a raw ``struct.error`` or silent garbage).
    """
    if isinstance(source, (str, os.PathLike)):
        path: str | None = os.fspath(source)
        size = os.path.getsize(path)
        if size < TRAILER_BYTES:
            raise IFileCorruptError(
                f"segment too short to digest ({size} bytes)", path)
        with open(path, "rb") as fh:
            fh.seek(size - 4)
            tail = fh.read(4)
    else:
        path = None
        blob = bytes(source)
        size = len(blob)
        if size < TRAILER_BYTES:
            raise IFileCorruptError(
                f"segment too short to digest ({size} bytes)", path)
        tail = blob[-4:]
    return SegmentDigest(length=size, crc=int.from_bytes(tail, "big"))


#: leading bytes of the chunked block format.  0x93 decodes as vint key
#: length -109, which a plain segment can never legitimately start with,
#: so the two layouts are distinguishable from the first byte.
BLOCK_MAGIC = b"\x93IFB"
#: two vint(-1) bytes
EOF_MARKER_BYTES = 2
#: EOF marker + CRC32
TRAILER_BYTES = EOF_MARKER_BYTES + 4


@dataclass
class IFileStats:
    """Byte accounting for one IFile segment."""

    records: int = 0
    key_bytes: int = 0
    value_bytes: int = 0
    #: per-record varint framing plus the 6-byte trailer
    overhead_bytes: int = 0
    #: on-disk (post-codec) size; equals raw_bytes for the null codec
    materialized_bytes: int = 0

    @property
    def raw_bytes(self) -> int:
        """Total uncompressed stream size."""
        return self.key_bytes + self.value_bytes + self.overhead_bytes

    def merge(self, other: "IFileStats") -> None:
        self.records += other.records
        self.key_bytes += other.key_bytes
        self.value_bytes += other.value_bytes
        self.overhead_bytes += other.overhead_bytes
        self.materialized_bytes += other.materialized_bytes


class IFileWriter:
    """Write an IFile segment to ``path`` (or keep it in memory).

    Usage::

        writer = IFileWriter(path, codec)
        writer.append(key_bytes, value_bytes)
        stats = writer.close()

    With ``block_bytes`` set the segment uses the chunked block layout
    (module docstring): records are sealed into independently
    compressed, individually checksummed blocks of about ``block_bytes``
    raw bytes each, so corruption localizes to one block.
    """

    def __init__(self, path: str | os.PathLike | None, codec: Codec | None = None,
                 atomic: bool = False, block_bytes: int | None = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.codec = codec if codec is not None else NullCodec()
        #: write to a temp file and rename into place on close, so a
        #: reader (or a crashed writer) never observes a partial segment
        self.atomic = atomic
        if block_bytes is not None and block_bytes < 256:
            raise ValueError(f"block_bytes must be >= 256, got {block_bytes}")
        self.block_bytes = block_bytes
        self._buf = ByteBuffer()
        self._block_buf = ByteBuffer()
        self._block_records = 0
        #: per sealed block: (records, raw_len, comp_len, crc32)
        self._blocks: list[tuple[int, int, int, int]] = []
        self.stats = IFileStats()
        self._closed = False
        self._blob: bytes | None = None

    def append(self, key: bytes, value: bytes) -> None:
        """Append one serialized record."""
        if self._closed:
            raise RuntimeError("writer already closed")
        frame = bytearray()
        write_vlong(len(key), frame)
        write_vlong(len(value), frame)
        self.stats.overhead_bytes += len(frame)
        self.stats.key_bytes += len(key)
        self.stats.value_bytes += len(value)
        self.stats.records += 1
        if self.block_bytes is None:
            self._buf.write(frame)
            self._buf.write(key)
            self._buf.write(value)
            return
        self._block_buf.write(frame)
        self._block_buf.write(key)
        self._block_buf.write(value)
        self._block_records += 1
        if len(self._block_buf) >= self.block_bytes:
            self._seal_block()

    def append_batch(self, keys: "np.ndarray", values: "np.ndarray") -> None:
        """Append many fixed-width records in one numpy pass.

        ``keys`` and ``values`` are ``(n, key_size)`` / ``(n, value_size)``
        uint8 matrices.  The stream bytes and :class:`IFileStats` are
        identical to calling :meth:`append` row by row -- the varint frame
        is the same for every record because widths are fixed.
        """
        if self._closed:
            raise RuntimeError("writer already closed")
        n, kw = keys.shape
        nv, vw = values.shape
        if n != nv:
            raise ValueError(f"{n} keys vs {nv} values")
        if n == 0:
            return
        frame = bytearray()
        write_vlong(kw, frame)
        write_vlong(vw, frame)
        flen = len(frame)
        pitch = flen + kw + vw
        out = np.empty((n, pitch), dtype=np.uint8)
        out[:, :flen] = np.frombuffer(bytes(frame), dtype=np.uint8)
        out[:, flen:flen + kw] = keys
        out[:, flen + kw:] = values
        self.stats.overhead_bytes += flen * n
        self.stats.key_bytes += kw * n
        self.stats.value_bytes += vw * n
        self.stats.records += n
        if self.block_bytes is None:
            self._buf.write(out.tobytes())
            return
        flat = out.tobytes()
        row = 0
        while row < n:
            room = self.block_bytes - len(self._block_buf)
            take = min(n - row, max(1, room // pitch))
            self._block_buf.write(flat[row * pitch:(row + take) * pitch])
            self._block_records += take
            row += take
            if len(self._block_buf) >= self.block_bytes:
                self._seal_block()

    def _seal_block(self) -> None:
        """Compress and checksum the pending block, if any."""
        if self._block_records == 0:
            return
        raw = self._block_buf.getvalue()
        comp = self.codec.compress(raw)
        self._blocks.append(
            (self._block_records, len(raw), len(comp), zlib.crc32(comp))
        )
        self._buf.write(comp)
        self._block_buf.clear()
        self._block_records = 0

    def close(self) -> IFileStats:
        """Finish the segment; returns the final byte accounting."""
        if self._closed:
            return self.stats
        self._closed = True
        if self.block_bytes is None:
            tail = bytearray()
            write_vlong(-1, tail)
            write_vlong(-1, tail)
            assert len(tail) == EOF_MARKER_BYTES
            self._buf.write(tail)
            payload = self._buf.getvalue()
            compressed = self.codec.compress(payload)
            crc = zlib.crc32(compressed)
            blob = compressed + crc.to_bytes(4, "big")
            self.stats.overhead_bytes += TRAILER_BYTES
        else:
            self._seal_block()
            footer = bytearray()
            write_vlong(len(self._blocks), footer)
            for nrec, raw_len, comp_len, crc in self._blocks:
                write_vlong(nrec, footer)
                write_vlong(raw_len, footer)
                write_vlong(comp_len, footer)
                footer.extend(crc.to_bytes(4, "big"))
            blob = (
                BLOCK_MAGIC
                + self._buf.getvalue()
                + bytes(footer)
                + len(footer).to_bytes(4, "big")
                + zlib.crc32(bytes(footer)).to_bytes(4, "big")
            )
            self.stats.overhead_bytes += len(BLOCK_MAGIC) + len(footer) + 8
        self.stats.materialized_bytes = len(blob)
        if self.path is not None:
            if self.atomic:
                # Durable commit: fsync the temp file before the rename
                # (and the directory after), so a crash can never
                # surface an empty or truncated *committed* segment --
                # the rename target is always a valid IFile.
                atomic_write_bytes(self.path, blob)
            else:
                with open(self.path, "wb") as fh:
                    fh.write(blob)
        else:
            self._blob = blob
        self._buf.clear()
        self._block_buf.clear()
        return self.stats

    def getvalue(self) -> bytes:
        """In-memory segment bytes (only for ``path=None`` writers)."""
        if not self._closed:
            raise RuntimeError("close() the writer first")
        if self._blob is None:
            raise RuntimeError("segment was written to a file, not memory")
        return self._blob


class IFileReader:
    """Iterate ``(key_bytes, value_bytes)`` records of an IFile segment.

    Handles both the plain layout and the chunked block layout
    transparently (dispatch on the leading :data:`BLOCK_MAGIC` bytes).
    With ``verify_checksum=True`` a corrupt *block* raises
    :class:`IFileBlockCorruptError` at construction -- catch it, re-open
    with ``verify_checksum=False`` and call :meth:`read_salvage` to
    recover the healthy remainder.
    """

    def __init__(
        self,
        source: str | os.PathLike | bytes,
        codec: Codec | None = None,
        verify_checksum: bool = True,
        path: str | None = None,
    ) -> None:
        """``path`` attaches provenance to a reader over in-memory bytes
        (e.g. a fetched shuffle transfer), so integrity errors still name
        the on-disk segment the repair/re-execution ladder must target."""
        if isinstance(source, (str, os.PathLike)):
            self.path: str | None = os.fspath(source)
            with open(source, "rb") as fh:
                blob = fh.read()
        else:
            self.path = path
            blob = bytes(source)
        self._codec = codec if codec is not None else NullCodec()
        self._blocked = blob.startswith(BLOCK_MAGIC)
        if self._blocked:
            self._payload = b""
            self._init_blocked(blob, verify_checksum)
            return
        self._blob = b""
        self._blocks: list[tuple[int, int, int, int]] = []
        self._block_offsets: list[int] = []
        if len(blob) < TRAILER_BYTES:
            raise IFileCorruptError(
                f"segment too short ({len(blob)} bytes)", self.path)
        body, crc_bytes = blob[:-4], blob[-4:]
        if verify_checksum and zlib.crc32(body) != int.from_bytes(crc_bytes, "big"):
            raise IFileCorruptError("IFile checksum mismatch", self.path)
        self._payload = self._codec.decompress(body)
        if len(self._payload) < EOF_MARKER_BYTES:
            raise MalformedRecordError(
                "decompressed payload missing EOF marker", path=self.path)

    def _init_blocked(self, blob: bytes, verify_checksum: bool) -> None:
        """Parse and (optionally) verify the chunked block layout."""
        self._blob = blob
        if len(blob) < len(BLOCK_MAGIC) + 9:
            raise IFileCorruptError(
                f"blocked segment too short ({len(blob)} bytes)", self.path)
        footer_len = int.from_bytes(blob[-8:-4], "big")
        footer_crc = int.from_bytes(blob[-4:], "big")
        if footer_len < 1 or len(BLOCK_MAGIC) + footer_len + 8 > len(blob):
            raise IFileCorruptError(
                f"bad block footer length {footer_len}", self.path)
        footer = blob[len(blob) - 8 - footer_len:len(blob) - 8]
        if zlib.crc32(footer) != footer_crc:
            raise IFileCorruptError("block footer checksum mismatch", self.path)
        try:
            nblocks, offset = read_vlong(footer, 0)
            if nblocks < 0:
                raise IFileCorruptError(
                    f"bad block count {nblocks}", self.path)
            blocks = []
            for _ in range(nblocks):
                nrec, offset = read_vlong(footer, offset)
                raw_len, offset = read_vlong(footer, offset)
                comp_len, offset = read_vlong(footer, offset)
                if offset + 4 > len(footer):
                    raise IFileCorruptError("truncated block footer", self.path)
                crc = int.from_bytes(footer[offset:offset + 4], "big")
                offset += 4
                if nrec < 0 or raw_len < 0 or comp_len < 0:
                    raise IFileCorruptError("malformed block footer", self.path)
                blocks.append((nrec, raw_len, comp_len, crc))
            if offset != len(footer):
                raise IFileCorruptError(
                    "trailing bytes in block footer", self.path)
        except IFileCorruptError:
            raise
        except CorruptRecordError as exc:
            raise IFileCorruptError(
                f"malformed block footer: {exc}", self.path) from exc
        body_len = len(blob) - len(BLOCK_MAGIC) - footer_len - 8
        if sum(b[2] for b in blocks) != body_len:
            raise IFileCorruptError(
                "block sizes disagree with segment length", self.path)
        offsets = []
        pos = len(BLOCK_MAGIC)
        for _, _, comp_len, _ in blocks:
            offsets.append(pos)
            pos += comp_len
        self._blocks = blocks
        self._block_offsets = offsets
        if verify_checksum:
            for i, (nrec, _, comp_len, crc) in enumerate(blocks):
                start = offsets[i]
                if zlib.crc32(blob[start:start + comp_len]) != crc:
                    raise IFileBlockCorruptError(
                        "block checksum mismatch", self.path,
                        block_index=i, records_lost=nrec)

    @property
    def is_blocked(self) -> bool:
        """True when the segment uses the chunked block layout."""
        return self._blocked

    def _decode_block(self, index: int) -> list[tuple[bytes, bytes]]:
        """Decompress and decode one block into its records (strict)."""
        nrec, raw_len, comp_len, _ = self._blocks[index]
        start = self._block_offsets[index]
        raw = self._codec.decompress(self._blob[start:start + comp_len])
        if len(raw) != raw_len:
            raise MalformedRecordError(
                f"block {index} decompressed to {len(raw)} bytes, "
                f"footer says {raw_len}", path=self.path)
        buf = memoryview(raw)
        offset = 0
        records = []
        for r in range(nrec):
            key_len, offset = read_vlong(buf, offset)
            val_len, offset = read_vlong(buf, offset)
            if key_len < 0 or val_len < 0 or offset + key_len + val_len > len(buf):
                raise MalformedRecordError(
                    "malformed record frame", offset=offset,
                    record_index=r, path=self.path)
            key = bytes(buf[offset:offset + key_len])
            offset += key_len
            value = bytes(buf[offset:offset + val_len])
            offset += val_len
            records.append((key, value))
        if offset != len(buf):
            raise MalformedRecordError(
                f"{len(buf) - offset} trailing bytes in block {index}",
                offset=offset, path=self.path)
        return records

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        if self._blocked:
            for i in range(len(self._blocks)):
                yield from self._decode_block(i)
            return
        buf = memoryview(self._payload)
        offset = 0
        index = 0
        while True:
            key_len, offset = read_vlong(buf, offset)
            if key_len == -1:
                val_len, offset = read_vlong(buf, offset)
                if val_len != -1:
                    raise MalformedRecordError(
                        "malformed EOF marker", offset=offset, path=self.path)
                if offset != len(buf):
                    raise MalformedRecordError(
                        "trailing bytes after EOF marker", offset=offset,
                        path=self.path)
                return
            val_len, offset = read_vlong(buf, offset)
            if key_len < 0 or val_len < 0 or offset + key_len + val_len > len(buf):
                raise MalformedRecordError(
                    "malformed record frame", offset=offset,
                    record_index=index, path=self.path)
            key = bytes(buf[offset:offset + key_len])
            offset += key_len
            value = bytes(buf[offset:offset + val_len])
            offset += val_len
            index += 1
            yield key, value

    def read_all(self) -> list[tuple[bytes, bytes]]:
        """Materialize every record (convenience for tests/small segments)."""
        return list(self)

    def read_salvage(self) -> tuple[list[tuple[bytes, bytes]], list[BadBlock]]:
        """Recover every decodable record of a chunked segment.

        Returns ``(records, bad_blocks)``: records from every block whose
        CRC and decode succeed, in stream order, plus a :class:`BadBlock`
        per failed block (its footer-promised record count and raw
        compressed bytes, for quarantine).  Open the reader with
        ``verify_checksum=False`` first, otherwise construction already
        raised on the bad block.  Plain (non-chunked) segments have no
        block boundaries to salvage at: an intact segment returns
        ``(all records, [])``, a damaged one raises
        :class:`IFileCorruptError` (whole-segment repair territory).
        """
        if not self._blocked:
            # Construction already verified/decompressed; damage beyond
            # the CRC surfaces as decode errors here.
            try:
                return self.read_all(), []
            except CorruptRecordError as exc:
                raise IFileCorruptError(
                    f"plain segment unsalvageable: {exc}", self.path) from exc
        records: list[tuple[bytes, bytes]] = []
        bad: list[BadBlock] = []
        for i, (nrec, _, comp_len, crc) in enumerate(self._blocks):
            start = self._block_offsets[i]
            comp = self._blob[start:start + comp_len]
            if zlib.crc32(comp) != crc:
                bad.append(BadBlock(i, nrec, comp))
                continue
            try:
                records.extend(self._decode_block(i))
            except CorruptRecordError:
                bad.append(BadBlock(i, nrec, comp))
        return records, bad

    def read_columnar(
        self, key_width: int, value_width: int
    ) -> tuple["np.ndarray", "np.ndarray"] | None:
        """Decode a fixed-width segment into key/value uint8 matrices.

        The caller asserts (from spill metadata) that every record is
        ``key_width`` x ``value_width``; the regular layout is verified --
        stream length must divide evenly and every record's varint frame
        must match -- and ``None`` is returned if it does not, so callers
        can fall back to the record iterator.  Equivalent to
        :meth:`read_all` without materializing per-record ``bytes``.
        Chunked segments return ``None`` (spills, the columnar fast
        path's input, are always plain).
        """
        if self._blocked:
            return None
        if key_width <= 0 or value_width <= 0:
            return None
        frame = bytearray()
        write_vlong(key_width, frame)
        write_vlong(value_width, frame)
        flen = len(frame)
        pitch = flen + key_width + value_width
        body_len = len(self._payload) - EOF_MARKER_BYTES
        if body_len < 0 or body_len % pitch != 0:
            return None
        if bytes(self._payload[body_len:]) != b"\xff\xff":
            return None  # no clean EOF marker; let the iterator diagnose
        n = body_len // pitch
        if n == 0:
            return np.empty((0, key_width), np.uint8), np.empty((0, value_width), np.uint8)
        mat = np.frombuffer(self._payload, dtype=np.uint8, count=n * pitch)
        mat = mat.reshape(n, pitch)
        if not np.array_equiv(mat[:, :flen], np.frombuffer(bytes(frame), np.uint8)):
            return None
        return mat[:, flen:flen + key_width], mat[:, flen + key_width:]
