"""Hadoop IFile-compatible intermediate file format.

Each record is framed as ``<vint key_len><vint value_len><key><value>``;
the stream ends with an EOF marker (two ``vint(-1)`` bytes) and a 4-byte
CRC32.  That framing is the "non-zero overhead per key/value pair" Fig 8
charges to "File overhead": 2 bytes per small record plus a 6-byte
trailer, which is exactly how the paper's 26,000,006-byte file decomposes
(10^6 records x (2 + 20 + 4) + 6).

The writer optionally compresses the whole record stream through a
pluggable :class:`~repro.mapreduce.codecs.Codec` -- the hook the paper's
§III codec plugs into -- and reports a byte-accounting breakdown
(:class:`IFileStats`) so experiments can print the values/keys/overhead
split of Fig 8 directly.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.mapreduce.codecs import Codec, NullCodec
from repro.util.bytebuf import ByteBuffer
from repro.util.fsio import atomic_write_bytes
from repro.util.varint import read_vlong, write_vlong

__all__ = [
    "IFileStats",
    "IFileWriter",
    "IFileReader",
    "IFileCorruptError",
    "EOF_MARKER_BYTES",
    "TRAILER_BYTES",
]


class IFileCorruptError(ValueError):
    """A segment failed its integrity checks (checksum, framing, EOF).

    Carries the offending ``path`` (when the segment was read from a
    file) so a task runtime can identify *which* map output to
    re-execute -- Hadoop's fetch-failure -> re-run-the-mapper protocol.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        super().__init__(message if path is None else f"{message}: {path}")
        self.path = path

#: two vint(-1) bytes
EOF_MARKER_BYTES = 2
#: EOF marker + CRC32
TRAILER_BYTES = EOF_MARKER_BYTES + 4


@dataclass
class IFileStats:
    """Byte accounting for one IFile segment."""

    records: int = 0
    key_bytes: int = 0
    value_bytes: int = 0
    #: per-record varint framing plus the 6-byte trailer
    overhead_bytes: int = 0
    #: on-disk (post-codec) size; equals raw_bytes for the null codec
    materialized_bytes: int = 0

    @property
    def raw_bytes(self) -> int:
        """Total uncompressed stream size."""
        return self.key_bytes + self.value_bytes + self.overhead_bytes

    def merge(self, other: "IFileStats") -> None:
        self.records += other.records
        self.key_bytes += other.key_bytes
        self.value_bytes += other.value_bytes
        self.overhead_bytes += other.overhead_bytes
        self.materialized_bytes += other.materialized_bytes


class IFileWriter:
    """Write an IFile segment to ``path`` (or keep it in memory).

    Usage::

        writer = IFileWriter(path, codec)
        writer.append(key_bytes, value_bytes)
        stats = writer.close()
    """

    def __init__(self, path: str | os.PathLike | None, codec: Codec | None = None,
                 atomic: bool = False) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.codec = codec if codec is not None else NullCodec()
        #: write to a temp file and rename into place on close, so a
        #: reader (or a crashed writer) never observes a partial segment
        self.atomic = atomic
        self._buf = ByteBuffer()
        self.stats = IFileStats()
        self._closed = False
        self._blob: bytes | None = None

    def append(self, key: bytes, value: bytes) -> None:
        """Append one serialized record."""
        if self._closed:
            raise RuntimeError("writer already closed")
        frame = bytearray()
        write_vlong(len(key), frame)
        write_vlong(len(value), frame)
        self.stats.overhead_bytes += len(frame)
        self.stats.key_bytes += len(key)
        self.stats.value_bytes += len(value)
        self.stats.records += 1
        self._buf.write(frame)
        self._buf.write(key)
        self._buf.write(value)

    def append_batch(self, keys: "np.ndarray", values: "np.ndarray") -> None:
        """Append many fixed-width records in one numpy pass.

        ``keys`` and ``values`` are ``(n, key_size)`` / ``(n, value_size)``
        uint8 matrices.  The stream bytes and :class:`IFileStats` are
        identical to calling :meth:`append` row by row -- the varint frame
        is the same for every record because widths are fixed.
        """
        if self._closed:
            raise RuntimeError("writer already closed")
        n, kw = keys.shape
        nv, vw = values.shape
        if n != nv:
            raise ValueError(f"{n} keys vs {nv} values")
        if n == 0:
            return
        frame = bytearray()
        write_vlong(kw, frame)
        write_vlong(vw, frame)
        flen = len(frame)
        pitch = flen + kw + vw
        out = np.empty((n, pitch), dtype=np.uint8)
        out[:, :flen] = np.frombuffer(bytes(frame), dtype=np.uint8)
        out[:, flen:flen + kw] = keys
        out[:, flen + kw:] = values
        self.stats.overhead_bytes += flen * n
        self.stats.key_bytes += kw * n
        self.stats.value_bytes += vw * n
        self.stats.records += n
        self._buf.write(out.tobytes())

    def close(self) -> IFileStats:
        """Finish the segment; returns the final byte accounting."""
        if self._closed:
            return self.stats
        self._closed = True
        tail = bytearray()
        write_vlong(-1, tail)
        write_vlong(-1, tail)
        assert len(tail) == EOF_MARKER_BYTES
        self._buf.write(tail)
        payload = self._buf.getvalue()
        compressed = self.codec.compress(payload)
        crc = zlib.crc32(compressed)
        blob = compressed + crc.to_bytes(4, "big")
        self.stats.overhead_bytes += TRAILER_BYTES
        self.stats.materialized_bytes = len(blob)
        if self.path is not None:
            if self.atomic:
                # Durable commit: fsync the temp file before the rename
                # (and the directory after), so a crash can never
                # surface an empty or truncated *committed* segment --
                # the rename target is always a valid IFile.
                atomic_write_bytes(self.path, blob)
            else:
                with open(self.path, "wb") as fh:
                    fh.write(blob)
        else:
            self._blob = blob
        self._buf.clear()
        return self.stats

    def getvalue(self) -> bytes:
        """In-memory segment bytes (only for ``path=None`` writers)."""
        if not self._closed:
            raise RuntimeError("close() the writer first")
        if self._blob is None:
            raise RuntimeError("segment was written to a file, not memory")
        return self._blob


class IFileReader:
    """Iterate ``(key_bytes, value_bytes)`` records of an IFile segment."""

    def __init__(
        self,
        source: str | os.PathLike | bytes,
        codec: Codec | None = None,
        verify_checksum: bool = True,
    ) -> None:
        if isinstance(source, (str, os.PathLike)):
            self.path: str | None = os.fspath(source)
            with open(source, "rb") as fh:
                blob = fh.read()
        else:
            self.path = None
            blob = bytes(source)
        if len(blob) < TRAILER_BYTES:
            raise IFileCorruptError(
                f"segment too short ({len(blob)} bytes)", self.path)
        body, crc_bytes = blob[:-4], blob[-4:]
        if verify_checksum and zlib.crc32(body) != int.from_bytes(crc_bytes, "big"):
            raise IFileCorruptError("IFile checksum mismatch", self.path)
        codec = codec if codec is not None else NullCodec()
        self._payload = codec.decompress(body)
        if len(self._payload) < EOF_MARKER_BYTES:
            raise ValueError("decompressed payload missing EOF marker")

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        buf = memoryview(self._payload)
        offset = 0
        while True:
            key_len, offset = read_vlong(buf, offset)
            if key_len == -1:
                val_len, offset = read_vlong(buf, offset)
                if val_len != -1:
                    raise ValueError("malformed EOF marker")
                if offset != len(buf):
                    raise ValueError("trailing bytes after EOF marker")
                return
            val_len, offset = read_vlong(buf, offset)
            if key_len < 0 or val_len < 0 or offset + key_len + val_len > len(buf):
                raise ValueError("malformed record frame")
            key = bytes(buf[offset:offset + key_len])
            offset += key_len
            value = bytes(buf[offset:offset + val_len])
            offset += val_len
            yield key, value

    def read_all(self) -> list[tuple[bytes, bytes]]:
        """Materialize every record (convenience for tests/small segments)."""
        return list(self)

    def read_columnar(
        self, key_width: int, value_width: int
    ) -> tuple["np.ndarray", "np.ndarray"] | None:
        """Decode a fixed-width segment into key/value uint8 matrices.

        The caller asserts (from spill metadata) that every record is
        ``key_width`` x ``value_width``; the regular layout is verified --
        stream length must divide evenly and every record's varint frame
        must match -- and ``None`` is returned if it does not, so callers
        can fall back to the record iterator.  Equivalent to
        :meth:`read_all` without materializing per-record ``bytes``.
        """
        if key_width <= 0 or value_width <= 0:
            return None
        frame = bytearray()
        write_vlong(key_width, frame)
        write_vlong(value_width, frame)
        flen = len(frame)
        pitch = flen + key_width + value_width
        body_len = len(self._payload) - EOF_MARKER_BYTES
        if body_len < 0 or body_len % pitch != 0:
            return None
        if bytes(self._payload[body_len:]) != b"\xff\xff":
            return None  # no clean EOF marker; let the iterator diagnose
        n = body_len // pitch
        if n == 0:
            return np.empty((0, key_width), np.uint8), np.empty((0, value_width), np.uint8)
        mat = np.frombuffer(self._payload, dtype=np.uint8, count=n * pitch)
        mat = mat.reshape(n, pitch)
        if not np.array_equiv(mat[:, :flen], np.frombuffer(bytes(frame), np.uint8)):
            return None
        return mat[:, flen:flen + key_width], mat[:, flen + key_width:]
