"""Locality-aware map scheduling over the simulated DFS.

Hadoop's JobTracker tries to run each map task on a node holding a
replica of its input block; a miss ("rack-local"/"off-rack" task) pays a
network copy of the input before the task can start.  This module adds
that dimension to the cluster simulator: given per-task durations,
input sizes, and preferred nodes (from :class:`~repro.mapreduce.
simcluster.dfs.SimDFS` placement), it assigns tasks to node-bound slots
and reports the makespan and the data-local fraction -- the knob the
locality ablation (A7) sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.mapreduce.simcluster.model import ClusterSpec

__all__ = ["MapTaskSpec", "ScheduleResult", "schedule_maps"]


@dataclass(frozen=True)
class MapTaskSpec:
    """One map task as the scheduler sees it."""

    duration: float           # seconds when reading input locally
    input_bytes: int          # bytes fetched over the network on a miss
    preferred_nodes: tuple[int, ...]  # replica holders of its input block

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.input_bytes < 0:
            raise ValueError(f"input_bytes must be >= 0, got {self.input_bytes}")


@dataclass
class ScheduleResult:
    """Outcome of scheduling one map wave."""

    makespan: float
    data_local_tasks: int
    total_tasks: int
    #: per-node busy seconds (load-balance introspection)
    node_busy: list[float]

    @property
    def locality_fraction(self) -> float:
        if self.total_tasks == 0:
            return 1.0
        return self.data_local_tasks / self.total_tasks


def schedule_maps(
    spec: ClusterSpec,
    tasks: Sequence[MapTaskSpec],
    locality_aware: bool = True,
) -> ScheduleResult:
    """Greedy earliest-finish scheduling with optional locality preference.

    Each node owns ``spec.map_slots_per_node`` slots.  For every task (in
    submission order) the scheduler picks the slot minimizing the task's
    finish time, where running on a node without a replica adds the
    input's network transfer time.  ``locality_aware=False`` models a
    placement-blind scheduler (it ignores replica locations when ranking
    slots but still pays the transfer penalty) -- the baseline the
    ablation compares against.
    """
    # slot state: free time per (node, slot)
    free = [
        [0.0] * spec.map_slots_per_node for _ in range(spec.nodes)
    ]
    busy = [0.0] * spec.nodes
    makespan = 0.0
    local_count = 0
    for task in tasks:
        best = None  # (finish, not_preferred, node, slot_idx)
        for node in range(spec.nodes):
            local = node in task.preferred_nodes
            penalty = 0.0 if local else task.input_bytes / spec.network_bandwidth
            for slot_idx, slot_free in enumerate(free[node]):
                if locality_aware:
                    finish = slot_free + task.duration + penalty
                    rank = (finish, 0 if local else 1, node, slot_idx)
                else:
                    # blind: rank only by slot availability; the penalty
                    # is paid but not optimized for
                    finish = slot_free + task.duration + penalty
                    rank = (slot_free, node, slot_idx, finish)
                if best is None or rank < best[0]:
                    best = (rank, finish, node, slot_idx, local)
        _, finish, node, slot_idx, local = best
        start = free[node][slot_idx]
        free[node][slot_idx] = finish
        busy[node] += finish - start
        makespan = max(makespan, finish)
        if local:
            local_count += 1
    return ScheduleResult(
        makespan=makespan,
        data_local_tasks=local_count,
        total_tasks=len(tasks),
        node_busy=busy,
    )
