"""End-to-end cluster pipeline: engine + DFS + locality + timeline.

Glues the pieces of Fig 1 into one call: the real engine executes the
job (steps 2-6, measured bytes and CPU); a :class:`SimDFS` places the
input blocks (step 1) and receives the output (step 7); the locality
scheduler assigns map tasks to replica-holding nodes; and the cost
model prices the reduce phase.  The result is a single simulated
wall-clock with a data-locality breakdown -- the fullest-fidelity mode
of the cluster substitution described in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapreduce.engine import JobResult, LocalJobRunner
from repro.mapreduce.job import Job
from repro.mapreduce.simcluster.dfs import SimDFS
from repro.mapreduce.simcluster.model import ClusterSimulator, ClusterSpec, _schedule
from repro.mapreduce.simcluster.schedule import MapTaskSpec, schedule_maps
from repro.scidata.dataset import Dataset

__all__ = ["ClusterRunResult", "ClusterJobRunner"]


@dataclass
class ClusterRunResult:
    """One job's real results plus its simulated cluster execution."""

    job_result: JobResult
    map_seconds: float
    reduce_seconds: float
    #: time to replicate the job output back into the DFS (step 7)
    output_write_seconds: float
    data_local_fraction: float

    @property
    def total_seconds(self) -> float:
        return self.map_seconds + self.reduce_seconds + self.output_write_seconds


class ClusterJobRunner:
    """Run a job for real, then simulate it on a described cluster.

    Parameters
    ----------
    spec:
        Cluster hardware/slot model (defaults to the paper's 5-node
        layout).
    replication:
        DFS replication factor for input and output files.
    locality_aware:
        Whether the map scheduler prefers replica-holding nodes.
    """

    def __init__(self, spec: ClusterSpec | None = None, replication: int = 3,
                 locality_aware: bool = True,
                 block_size: int = 64 << 20) -> None:
        self.spec = spec or ClusterSpec()
        self.replication = replication
        self.locality_aware = locality_aware
        self.block_size = block_size
        self.dfs = SimDFS(nodes=self.spec.nodes, replication=replication,
                          block_size=block_size)
        self._engine = LocalJobRunner()
        self._sim = ClusterSimulator(self.spec)

    def run(self, job: Job, dataset: Dataset) -> ClusterRunResult:
        result = self._engine.run(job, dataset)

        # Step 1: place the input and build locality-annotated map tasks.
        input_file = f"{job.name}-input"
        if self.dfs.exists(input_file):
            self.dfs.delete(input_file)
        blocks = self.dfs.write(input_file, dataset.total_value_bytes())
        map_profiles = [p for p in result.task_profiles if p.kind == "map"]
        tasks = []
        for i, profile in enumerate(map_profiles):
            block = blocks[i % len(blocks)]
            # local duration: CPU plus local disk traffic (input read at
            # disk speed happens on the replica holder; remote reads add
            # the network term inside the scheduler)
            local_disk = (
                profile.input_bytes
                + profile.local_write_bytes
                + profile.local_read_bytes
            ) / self.spec.disk_bandwidth
            tasks.append(MapTaskSpec(
                duration=profile.total_cpu / self.spec.cpu_scale + local_disk,
                input_bytes=profile.input_bytes,
                preferred_nodes=block.replicas,
            ))
        sched = schedule_maps(self.spec, tasks,
                              locality_aware=self.locality_aware)

        # Steps 4-6: reduce phase through the cost model.
        reduce_durations = [
            self._sim.reduce_task_duration(p)
            for p in result.task_profiles if p.kind == "reduce"
        ]
        reduce_seconds = _schedule(reduce_durations, self.spec.reduce_slots)

        # Step 7: replicate the output back into the DFS: one local write
        # plus (replication - 1) network copies of the output bytes.
        output_bytes = sum(
            p.output_bytes for p in result.task_profiles if p.kind == "reduce"
        )
        output_file = f"{job.name}-output"
        if self.dfs.exists(output_file):
            self.dfs.delete(output_file)
        self.dfs.write(output_file, output_bytes)
        copies = max(0, self.dfs.replication - 1)
        output_write = (
            output_bytes / self.spec.disk_bandwidth
            + copies * output_bytes / self.spec.network_bandwidth
        )

        return ClusterRunResult(
            job_result=result,
            map_seconds=sched.makespan,
            reduce_seconds=reduce_seconds,
            output_write_seconds=output_write,
            data_local_fraction=sched.locality_fraction,
        )
