"""A simulated HDFS: block placement, replication, and locality lookup.

Steps 1 and 7 of the paper's Fig 1 data flow read and write HDFS.  The
part of HDFS that matters to the wall-clock simulation is *placement*:
a map task whose input block has a replica on its own node reads from
local disk; otherwise the input crosses the network first.  This module
models exactly that -- files are sequences of fixed-size blocks, each
replicated on ``replication`` distinct nodes chosen by a deterministic
rendezvous hash, so placement is stable run-to-run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["BlockLocation", "SimDFS"]

DEFAULT_BLOCK_SIZE = 64 << 20  # Hadoop-era default: 64 MiB


@dataclass(frozen=True)
class BlockLocation:
    """One block of one file and the nodes holding its replicas."""

    file: str
    index: int
    size: int
    replicas: tuple[int, ...]


class SimDFS:
    """Deterministic block placement over ``nodes`` machines."""

    def __init__(self, nodes: int, replication: int = 3,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.nodes = nodes
        self.replication = min(replication, nodes)
        self.block_size = block_size
        self._files: dict[str, list[BlockLocation]] = {}

    # -- placement ----------------------------------------------------------

    def _place(self, file: str, index: int) -> tuple[int, ...]:
        """Rendezvous-hash the block onto ``replication`` distinct nodes."""
        scored = []
        for node in range(self.nodes):
            digest = hashlib.blake2b(
                f"{file}#{index}@{node}".encode(), digest_size=8
            ).digest()
            scored.append((int.from_bytes(digest, "big"), node))
        scored.sort(reverse=True)
        return tuple(node for _, node in scored[: self.replication])

    def write(self, file: str, size: int) -> list[BlockLocation]:
        """Create ``file`` of ``size`` bytes; returns its block layout."""
        if file in self._files:
            raise ValueError(f"file {file!r} already exists")
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        blocks: list[BlockLocation] = []
        remaining = size
        index = 0
        while remaining > 0 or index == 0:
            length = min(self.block_size, remaining) if size > 0 else 0
            blocks.append(BlockLocation(
                file=file, index=index, size=length,
                replicas=self._place(file, index),
            ))
            remaining -= length
            index += 1
            if size == 0:
                break
        self._files[file] = blocks
        return blocks

    def blocks(self, file: str) -> list[BlockLocation]:
        try:
            return list(self._files[file])
        except KeyError:
            raise KeyError(
                f"no file {file!r}; have {sorted(self._files)}"
            ) from None

    def exists(self, file: str) -> bool:
        return file in self._files

    def file_size(self, file: str) -> int:
        return sum(b.size for b in self.blocks(file))

    def delete(self, file: str) -> None:
        self._files.pop(file, None)

    # -- locality -----------------------------------------------------------

    def is_local(self, file: str, index: int, node: int) -> bool:
        """True if block ``index`` of ``file`` has a replica on ``node``."""
        for block in self.blocks(file):
            if block.index == index:
                return node in block.replicas
        raise KeyError(f"{file!r} has no block {index}")

    def replica_histogram(self, file: str) -> dict[int, int]:
        """Node -> replica count for one file (placement balance check)."""
        hist: dict[int, int] = {n: 0 for n in range(self.nodes)}
        for block in self.blocks(file):
            for node in block.replicas:
                hist[node] += 1
        return hist
