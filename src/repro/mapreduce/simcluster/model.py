"""Cluster specification, task cost model, and slot scheduler.

Model (deliberately simple, per DESIGN.md's substitution table):

* A cluster has ``nodes`` identical machines, each with ``map_slots`` and
  ``reduce_slots`` task slots, one local disk of ``disk_bandwidth`` B/s
  and a NIC of ``network_bandwidth`` B/s.
* A map task runs for ``cpu/cpu_scale + local_io/disk_bw`` seconds:
  measured CPU (scaled to the simulated node's speed) plus its measured
  disk traffic (input read, spills, merges, final output write).
* A reduce task additionally pays the shuffle: its fetched bytes cross
  the network once and land on local disk once before the merge begins
  (Hadoop-era reducers spill fetched map output to disk).
* Tasks are scheduled onto free slots in submission order; the reduce
  phase starts when the map phase ends (a barrier -- real Hadoop overlaps
  the copy phase, but the barrier preserves ordering of totals, which is
  all the paper's +106% / -28.5% comparisons need).

Every simplification here moves *both* sides of a comparison the same
way, so who-wins conclusions survive.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.mapreduce.metrics import TaskProfile

__all__ = ["ClusterSpec", "Timeline", "ClusterSimulator"]


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware model.  Defaults approximate the paper's 2012 testbed:
    5 nodes, 10 map slots total, 5 reducers, one SATA disk and GigE each.
    """

    nodes: int = 5
    map_slots_per_node: int = 2
    reduce_slots_per_node: int = 1
    disk_bandwidth: float = 100e6  # bytes/s
    network_bandwidth: float = 117e6  # bytes/s (~1 GigE)
    #: simulated-node CPU speed relative to the measuring machine
    cpu_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.map_slots_per_node < 1 or self.reduce_slots_per_node < 1:
            raise ValueError("slots per node must be >= 1")
        if min(self.disk_bandwidth, self.network_bandwidth, self.cpu_scale) <= 0:
            raise ValueError("bandwidths and cpu_scale must be positive")

    @property
    def map_slots(self) -> int:
        return self.nodes * self.map_slots_per_node

    @property
    def reduce_slots(self) -> int:
        return self.nodes * self.reduce_slots_per_node


@dataclass
class Timeline:
    """Simulated wall clock of one job."""

    map_seconds: float
    reduce_seconds: float
    #: per-task simulated durations, in scheduling order
    map_task_seconds: list[float] = field(default_factory=list)
    reduce_task_seconds: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.map_seconds + self.reduce_seconds

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0


def _schedule(durations: Sequence[float], slots: int) -> float:
    """Makespan of list-scheduling ``durations`` onto ``slots`` workers."""
    if not durations:
        return 0.0
    if slots < 1:
        raise ValueError(f"slots must be >= 1, got {slots}")
    free = [0.0] * min(slots, len(durations))
    heapq.heapify(free)
    finish = 0.0
    for d in durations:
        if d < 0:
            raise ValueError(f"negative task duration {d}")
        start = heapq.heappop(free)
        end = start + d
        finish = max(finish, end)
        heapq.heappush(free, end)
    return finish


class ClusterSimulator:
    """Price measured :class:`TaskProfile` lists into a :class:`Timeline`."""

    def __init__(self, spec: ClusterSpec | None = None) -> None:
        self.spec = spec or ClusterSpec()

    def map_task_duration(self, profile: TaskProfile) -> float:
        s = self.spec
        cpu = profile.total_cpu / s.cpu_scale
        disk = (
            profile.input_bytes
            + profile.local_write_bytes
            + profile.local_read_bytes
        ) / s.disk_bandwidth
        return cpu + disk

    def reduce_task_duration(self, profile: TaskProfile) -> float:
        s = self.spec
        cpu = profile.total_cpu / s.cpu_scale
        # Wire-compressed runs cross the NIC at the measured on-the-wire
        # size; the decoded segments still land on local disk in full.
        net_bytes = (profile.wire_bytes if profile.wire_bytes is not None
                     else profile.shuffle_bytes)
        net = net_bytes / s.network_bandwidth
        disk = (
            profile.shuffle_bytes  # fetched segments land on local disk
            + profile.local_write_bytes
            + profile.local_read_bytes
            + profile.output_bytes
        ) / s.disk_bandwidth
        return cpu + net + disk

    def simulate(self, profiles: Iterable[TaskProfile]) -> Timeline:
        """Slot-schedule all tasks; map barrier before reduce."""
        maps: list[float] = []
        reduces: list[float] = []
        for p in profiles:
            if p.kind == "map":
                maps.append(self.map_task_duration(p))
            elif p.kind == "reduce":
                reduces.append(self.reduce_task_duration(p))
            else:
                raise ValueError(f"unknown task kind {p.kind!r}")
        map_span = _schedule(maps, self.spec.map_slots)
        reduce_span = _schedule(reduces, self.spec.reduce_slots)
        return Timeline(
            map_seconds=map_span,
            reduce_seconds=reduce_span,
            map_task_seconds=maps,
            reduce_task_seconds=reduces,
        )
