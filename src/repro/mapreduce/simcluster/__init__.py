"""Discrete-event cluster simulator.

The paper's cluster results (§III-E, §IV-D: 5 nodes, 10 map slots, 5
reducers) report end-to-end minutes.  We cannot rent their 2012 cluster,
but wall-clock *shape* is determined by quantities the local engine
measures exactly -- per-task CPU seconds (including codec cost) and
per-task disk/network byte counts -- pushed through slot scheduling and
bandwidth arithmetic.  This package does that scheduling.
"""

from repro.mapreduce.simcluster.model import ClusterSpec, ClusterSimulator, Timeline
from repro.mapreduce.simcluster.dfs import BlockLocation, SimDFS
from repro.mapreduce.simcluster.schedule import (
    MapTaskSpec,
    ScheduleResult,
    schedule_maps,
)
from repro.mapreduce.simcluster.pipeline import ClusterJobRunner, ClusterRunResult

__all__ = [
    "ClusterSpec",
    "ClusterSimulator",
    "Timeline",
    "SimDFS",
    "BlockLocation",
    "MapTaskSpec",
    "ScheduleResult",
    "schedule_maps",
    "ClusterJobRunner",
    "ClusterRunResult",
]
