"""Command-line entry point: regenerate any paper artifact by id.

Usage::

    python -m repro list
    python -m repro run E7
    python -m repro run E3 --scale 1.0
    python -m repro run all

Each experiment prints the same paper-vs-measured table the benchmark
suite produces (see EXPERIMENTS.md for the mapping to the paper).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

__all__ = ["main", "experiment_ids"]


def _registry() -> dict[str, tuple[str, Callable]]:
    """Experiment id -> (description, runner).  Imported lazily so
    ``python -m repro list`` is instant."""
    from repro.experiments import ablations, chaos, cluster_runs, density, \
        e1_motivation, fig2_stream, fig3_table, fig4_scaling, \
        fig8_aggregation, figures_5_6_7, key_splitting, levers, locality, \
        multivar, p2_columnar, p3_pipeline, parallel_speedup, r2_poison, \
        r3_shuffle, r4_netshuffle, r5_hostchaos, r6_service, r7_memchaos

    return {
        "E1": ("§I motivation: per-cell-key file sizes (paper-exact)",
               lambda: e1_motivation.run()),
        "E2": ("Fig 2: dominant sequences in the key stream",
               lambda: fig2_stream.run()),
        "E2S": ("Fig 2 exact: SequenceFile framing, stride 47",
                lambda: fig2_stream.run_seqfile()),
        "E3": ("Fig 3: byte-level compression table",
               lambda: fig3_table.run()),
        "E4": ("Fig 4: transform time vs file size",
               lambda: fig4_scaling.run()),
        "E5": ("§III: stride-detection regimes",
               lambda: fig3_table.run_stride_choice()),
        "E6": ("§III-E / §IV-D cluster comparison (also E8)",
               lambda: cluster_runs.run()),
        "E7": ("Fig 8: key aggregation vs per-cell keys",
               lambda: fig8_aggregation.run()),
        "F5": ("Fig 5: n-D grouping ambiguity",
               lambda: figures_5_6_7.run_fig5()),
        "F6": ("Fig 6: curve numbering and range collapse",
               lambda: figures_5_6_7.run_fig6()),
        "F7": ("Fig 7: overlap splitting",
               lambda: figures_5_6_7.run_fig7()),
        "A1": ("ablation: curve choice (Z-order/Hilbert/Peano/row-major)",
               lambda: ablations.run_curve_choice()),
        "A2": ("ablation: aggregation flush threshold",
               lambda: ablations.run_flush_threshold()),
        "A3": ("ablation: alignment padding",
               lambda: ablations.run_alignment()),
        "A4": ("ablation: detector knobs",
               lambda: ablations.run_detector_knobs()),
        "A5": ("ablation: exact vs vectorized transform",
               lambda: ablations.run_exact_vs_fast()),
        "A6": ("ablation: key splitting + re-aggregation (§IV-B open Q)",
               lambda: key_splitting.run()),
        "A7": ("ablation: input locality and replication",
               lambda: locality.run()),
        "A8": ("ablation: aggregation vs key density",
               lambda: density.run()),
        "A9": ("ablation: multi-variable stream stride regimes",
               lambda: multivar.run()),
        "A10": ("ablation: combiner vs key aggregation levers",
                lambda: levers.run()),
        "P1": ("perf: serial vs parallel runtime on the Fig 8 job",
               lambda: parallel_speedup.run()),
        "P2": ("perf: scalar vs columnar record pipeline, map-phase "
               "throughput",
               lambda: p2_columnar.run()),
        "P3": ("perf: pipelined shuffle vs the barrier -- overlap map, "
               "fetch, and reduce-side merge, with straggler speculation "
               "and mid-pipeline host loss",
               lambda: p3_pipeline.run()),
        "R1": ("robustness: chaos soak -- randomized fault schedules and "
               "mid-job kill+resume vs the serial runner",
               lambda: chaos.run()),
        "R2": ("robustness: poison-safe pipeline -- record skipping, "
               "quarantine, and corrupt-block salvage, both runners",
               lambda: r2_poison.run()),
        "R3": ("robustness: shuffle transport -- fetch retries, failure "
               "accounting, and map re-execution, both runners",
               lambda: r3_shuffle.run()),
        "R4": ("robustness: network shuffle -- socket segment servers, "
               "on-the-wire codec compression, wire faults, server loss",
               lambda: r4_netshuffle.run()),
        "R5": ("robustness: host failure domains -- whole-host crashes, "
               "network partitions, and disk-fault failover, both runners",
               lambda: r5_hostchaos.run()),
        "R6": ("robustness: multi-tenant job service -- daemon SIGKILL + "
               "restart under concurrent tenants, admission shedding, "
               "fair-share dispatch, zero accepted jobs lost",
               lambda: r6_service.run()),
        "R7": ("robustness: memory chaos -- OOM kills mid-map/mid-fetch/"
               "mid-merge, real rlimit MemoryErrors, and byte-based "
               "shuffle backpressure under a small budget, both runners",
               lambda: r7_memchaos.run()),
    }


def experiment_ids() -> list[str]:
    """All runnable experiment ids (for docs and tests)."""
    return list(_registry())


def _run_tune(args, parser) -> int:
    """``repro tune``: fit, validate, and recommend.

    Runs a small sample job serially, fits the cost model on its task
    profiles against the cluster simulator (the offline oracle), prints
    the model's per-phase error band, and recommends knob settings for
    the target cluster.  The recommendation keeps the defaults unless
    the model predicts a material improvement, so applying it is never
    worse than doing nothing.
    """
    if args.scale is not None:
        if args.scale <= 0:
            parser.error("--scale must be positive")
        os.environ["REPRO_SCALE"] = str(args.scale)
    if args.nodes is not None and args.nodes < 1:
        parser.error("--nodes must be >= 1")
    if args.num_maps is not None and args.num_maps < 1:
        parser.error("--num-maps must be >= 1")
    if args.num_reducers is not None and args.num_reducers < 1:
        parser.error("--num-reducers must be >= 1")

    from repro.experiments.common import ExperimentResult, scaled
    from repro.mapreduce.engine import LocalJobRunner
    from repro.mapreduce.runtime.costmodel import CostModel, WorkloadSummary
    from repro.mapreduce.simcluster.model import ClusterSpec
    from repro.queries.histogram import HistogramQuery
    from repro.scidata.generator import integer_grid

    side = scaled(48, 1.0, minimum=16)
    num_maps = args.num_maps or 8
    num_reducers = args.num_reducers or 2
    grid = integer_grid((side, side), seed=29)
    job = HistogramQuery(grid, grid.names[0], bins=16).build_job(
        "plain", num_map_tasks=num_maps, num_reducers=num_reducers)
    result = LocalJobRunner().run(job, grid)

    spec = ClusterSpec(nodes=args.nodes) if args.nodes else ClusterSpec()
    workload = WorkloadSummary.from_result(result, job)
    model = CostModel.fit(result.task_profiles, workload, spec)
    errors = model.validate(result.task_profiles)
    default = model.predict()
    knobs = model.autotune()

    table = ExperimentResult(
        experiment="TUNE",
        title="Fitted cost model: phase predictions and recommended knobs",
        columns=("knob", "default", "recommended"),
    )
    table.add(knob="num_reducers", default=job.num_reducers,
              recommended=knobs.num_reducers)
    table.add(knob="wave_size", default=spec.map_slots,
              recommended=knobs.wave_size)
    table.add(knob="sort_buffer_bytes", default=job.sort_buffer_bytes,
              recommended=knobs.sort_buffer_bytes)
    table.add(knob="ifile_block_bytes", default=job.ifile_block_bytes,
              recommended=knobs.ifile_block_bytes)
    table.note(f"sample job: histogram over a {side}x{side} grid, "
               f"{num_maps} maps x {num_reducers} reducers "
               f"({workload.shuffle_bytes} shuffle bytes); "
               f"target cluster: {spec.nodes} nodes")
    table.note(f"predicted wall-clock: defaults "
               f"{default.total_seconds * 1e3:.2f} ms "
               f"(map {default.map_seconds * 1e3:.2f} + reduce "
               f"{default.reduce_seconds * 1e3:.2f}), recommended "
               f"{knobs.predicted_seconds * 1e3:.2f} ms")
    table.note(f"model error vs simulator: "
               f"map {errors['map_pct_error']:+.1f}%, "
               f"reduce {errors['reduce_pct_error']:+.1f}%, "
               f"mean abs {errors['mean_abs_pct_error']:.1f}% "
               f"(per-task {errors['task_mean_abs_pct_error']:.1f}%)")
    if not knobs.tuned:
        table.note("defaults already within 5% of the best candidate; "
                   "keeping them")
    print(table.format_table())
    return 0


def _service_root(args) -> str:
    """The daemon's root directory (``--root`` > env > ./.repro-service)."""
    return (args.root or os.environ.get("REPRO_SERVICE_ROOT")
            or os.path.join(os.getcwd(), ".repro-service"))


def _run_serve(args, parser) -> int:
    """``repro serve``: run the job daemon in the foreground.

    Recovers every accepted-but-unfinished job from the registry (so a
    restart after a crash resumes them), binds the local REST endpoint,
    publishes its address to ``<root>/service.json``, and serves until
    ``repro shutdown`` (or Ctrl-C, which is the same graceful path:
    running jobs are interrupted but stay resumable).
    """
    from repro.mapreduce.runtime.service import JobService, ServiceConfig
    from repro.mapreduce.runtime.service.http import ServiceEndpoint

    root = _service_root(args)
    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        os.environ["REPRO_SERVICE_WORKERS"] = str(args.workers)
    if args.executors is not None:
        if args.executors < 1:
            parser.error("--executors must be >= 1")
        os.environ["REPRO_SERVICE_EXECUTORS"] = str(args.executors)
    if args.tenants is not None:
        os.environ["REPRO_SERVICE_TENANTS"] = args.tenants
    if args.max_memory is not None:
        if args.max_memory < 1:
            parser.error("--max-memory must be >= 1")
        os.environ["REPRO_SERVICE_MAX_MEMORY"] = str(args.max_memory)
    try:
        config = ServiceConfig.from_env(root)
    except ValueError as exc:
        parser.error(str(exc))
    service = JobService(config)
    recovered = service.start()
    endpoint = ServiceEndpoint(service)
    path = endpoint.publish()
    print(f"repro job service on http://{endpoint.address[0]}:"
          f"{endpoint.address[1]} (root {root}, "
          f"{service.pool.max_workers} worker slots, "
          f"{recovered} job(s) recovered; advertised in {path})")
    endpoint.serve_forever()
    print("service stopped")
    return 0


#: registry states after which a followed event log can grow no further
_TERMINAL_STATES = ("DONE", "FAILED", "CANCELLED")


def _tail_events(client, args) -> int:
    """``repro events [--follow]``: print (and optionally tail) a job's
    durable event log.

    The daemon's appends are fsynced but not atomic, so the registry's
    ``events_since`` never consumes a torn tail line -- a poll that
    races a mid-flight append simply rereads that line complete on the
    next round.  With ``--follow``, polling stops once the job reports
    a terminal state *and* a final drain returns nothing new (events
    appended between the state check and the last poll still print).
    """
    import json as _json
    import time as _time

    offset = 0
    while True:
        reply = client.events(args.job_id, since=offset)
        if reply.get("error"):
            print(_json.dumps(reply, indent=2, sort_keys=True),
                  file=sys.stderr)
            return 1
        for event in reply.get("events", ()):
            print(f"{event.get('ts', 0):.3f}  {event.get('kind', '?'):<12}"
                  f"  {event.get('detail', '')}", flush=True)
        offset = int(reply.get("offset", offset))
        state = reply.get("state")
        if not args.follow:
            return 0
        if state in _TERMINAL_STATES and not reply.get("events"):
            print(f"-- {args.job_id} {state}", flush=True)
            return 0
        if not reply.get("events"):
            _time.sleep(max(0.05, args.interval))


def _run_client(args, parser) -> int:
    """``repro submit/status/jobs/cancel/shutdown``: talk to the daemon."""
    import json as _json

    from repro.mapreduce.runtime.service.http import (
        ServiceClient,
        ServiceUnavailableError,
    )
    from repro.mapreduce.runtime.service.workloads import JobSpec

    client = ServiceClient(_service_root(args))
    try:
        if args.command == "submit":
            try:
                shape = tuple(int(s) for s in args.shape.split(","))
                spec = JobSpec(
                    tenant=args.tenant,
                    query=args.query,
                    shape=shape,
                    seed=args.seed,
                    bins=args.bins,
                    num_maps=args.num_maps,
                    num_reducers=args.num_reducers,
                    memory_budget=args.memory_budget,
                    max_inflight_bytes=args.max_inflight_bytes,
                    skip_budget=args.skip_budget,
                    poison=tuple(
                        (t, int(r)) for t, r in
                        (p.split(":", 1) for p in args.poison or [])),
                    fetch_faults=tuple(
                        (m, r, op) for m, r, op in
                        (f.split(":", 2) for f in args.fetch_fault or [])),
                )
            except ValueError as exc:
                parser.error(str(exc))
            reply = client.submit(spec)
        elif args.command == "status":
            reply = client.status(args.job_id)
        elif args.command == "events":
            return _tail_events(client, args)
        elif args.command == "jobs":
            reply = client.jobs()
            if isinstance(reply, dict) and "jobs" in reply:
                # Occupancy alongside the listing: leased slots,
                # per-tenant usage, and memory-ledger headroom.
                health = client.health()
                reply["occupancy"] = {
                    "pool": health.get("pool"),
                    "queued": health.get("queued"),
                    "outstanding_seconds":
                        health.get("outstanding_seconds"),
                    "outstanding_memory_bytes":
                        health.get("outstanding_memory_bytes"),
                    "memory_cap_bytes": health.get("memory_cap_bytes"),
                }
        elif args.command == "cancel":
            reply = client.cancel(args.job_id)
        else:  # shutdown
            reply = client.shutdown()
    except ServiceUnavailableError as exc:
        print(str(exc), file=sys.stderr)
        return 3
    print(_json.dumps(reply, indent=2, sort_keys=True))
    # Structured rejections (OVERLOADED etc.) are answers, but the exit
    # code still signals them for scripting.
    return 1 if isinstance(reply, dict) and reply.get("error") else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from 'Compressing "
                    "Intermediate Keys between Mappers and Reducers in "
                    "SciHadoop' (SC 2012).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    sub.add_parser("codecs",
                   help="list registered segment codecs and their CPU "
                        "cost categories")
    tune_p = sub.add_parser(
        "tune",
        help="fit the per-phase cost model on a sample run, validate it "
             "against the cluster simulator, and recommend knob settings")
    tune_p.add_argument("--scale", type=float, default=None,
                        help="REPRO_SCALE override for the sample job "
                             "(1.0 = paper scale)")
    tune_p.add_argument("--nodes", type=int, default=None,
                        help="cluster size the prediction targets "
                             "(default 5, the paper's testbed)")
    tune_p.add_argument("--num-maps", type=int, default=None,
                        help="map tasks in the sample job (default 8)")
    tune_p.add_argument("--num-reducers", type=int, default=None,
                        help="reducers in the sample job (default 2)")
    serve_p = sub.add_parser(
        "serve",
        help="run the multi-tenant job daemon in the foreground "
             "(crash-safe registry, admission control, fair-share "
             "dispatch; see also submit/status/jobs/cancel/shutdown)")
    serve_p.add_argument("--root", default=None,
                         help="service state directory (default: "
                              "REPRO_SERVICE_ROOT or ./.repro-service)")
    serve_p.add_argument("--workers", type=int, default=None,
                         help="worker-process slots in the shared pool "
                              "(default: CPU count)")
    serve_p.add_argument("--executors", type=int, default=None,
                         help="concurrently executing jobs (default 2)")
    serve_p.add_argument("--tenants", default=None,
                         help="per-tenant weights and quotas as "
                              "'name:weight:quota[:membytes],...' (e.g. "
                              "'alice:2:4,bob:1:2:1048576'); the optional "
                              "fourth field caps the tenant's outstanding "
                              "priced job memory; unlisted tenants get "
                              "weight 1 and no quota")
    serve_p.add_argument("--max-memory", type=int, default=None,
                         help="global cap on outstanding priced job "
                              "memory in bytes; beyond it submissions "
                              "are shed with OVERCOMMITTED_MEMORY 429s "
                              "(default: uncapped)")
    submit_p = sub.add_parser(
        "submit", help="submit a job to the daemon and print its id")
    submit_p.add_argument("--root", default=None,
                          help="service state directory of the daemon")
    submit_p.add_argument("--tenant", default="default",
                          help="tenant the job is billed and scheduled "
                               "under (default 'default')")
    submit_p.add_argument("--query", default="histogram",
                          choices=["histogram", "sliding_mean", "subset"],
                          help="workload from the declarative catalog "
                               "(subset is the range-mappable one record "
                               "skipping needs)")
    submit_p.add_argument("--shape", default="12,12,12",
                          help="input grid shape, comma-separated "
                               "(default 12,12,12)")
    submit_p.add_argument("--seed", type=int, default=7,
                          help="deterministic input seed (default 7)")
    submit_p.add_argument("--bins", type=int, default=16,
                          help="histogram bins (default 16)")
    submit_p.add_argument("--num-maps", type=int, default=4,
                          help="map tasks (default 4)")
    submit_p.add_argument("--num-reducers", type=int, default=2,
                          help="reducers (default 2)")
    submit_p.add_argument("--memory-budget", type=int, default=None,
                          help="per-task memory ledger capacity in bytes "
                               "for this job (>= 256; overruns degrade "
                               "and retry with halved buffers)")
    submit_p.add_argument("--max-inflight-bytes", type=int, default=None,
                          help="reduce-side fetch byte window for this "
                               "job (bytes of in-flight shuffle data)")
    submit_p.add_argument("--skip-budget", type=int, default=None,
                          help="enable record skipping with this "
                               "quarantine budget")
    submit_p.add_argument("--poison", action="append", default=None,
                          metavar="TASK:RECORD",
                          help="inject a poison record, e.g. m00001:3 "
                               "(repeatable; requires --skip-budget to "
                               "survive)")
    submit_p.add_argument("--fetch-fault", action="append", default=None,
                          metavar="MAP:REDUCE:OP",
                          help="inject a transient fetch fault, e.g. "
                               "m00001:r00000:flip (repeatable)")
    status_p = sub.add_parser("status", help="print one job's status")
    status_p.add_argument("job_id")
    status_p.add_argument("--root", default=None,
                          help="service state directory of the daemon")
    events_p = sub.add_parser(
        "events", help="print one job's event log (optionally tailing it "
                       "until the job reaches a terminal state)")
    events_p.add_argument("job_id")
    events_p.add_argument("--root", default=None,
                          help="service state directory of the daemon")
    events_p.add_argument("--follow", action="store_true",
                          help="poll for new events until the job is "
                               "DONE/FAILED/CANCELLED (torn tail lines "
                               "are re-read once complete)")
    events_p.add_argument("--interval", type=float, default=0.5,
                          help="poll interval in seconds for --follow "
                               "(default 0.5)")
    jobs_p = sub.add_parser("jobs", help="list the daemon's jobs")
    jobs_p.add_argument("--root", default=None,
                        help="service state directory of the daemon")
    cancel_p = sub.add_parser("cancel", help="cancel a queued/running job")
    cancel_p.add_argument("job_id")
    cancel_p.add_argument("--root", default=None,
                          help="service state directory of the daemon")
    shutdown_p = sub.add_parser(
        "shutdown", help="stop the daemon gracefully (running jobs stay "
                         "resumable)")
    shutdown_p.add_argument("--root", default=None,
                            help="service state directory of the daemon")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run_p.add_argument("--scale", type=float, default=None,
                       help="REPRO_SCALE override (1.0 = paper scale)")
    run_p.add_argument("--runner", choices=["serial", "parallel"], default=None,
                       help="execution backend for the jobs the harnesses "
                            "run (parallel = multiprocess task runtime; "
                            "counters are byte-identical either way)")
    run_p.add_argument("--workers", type=int, default=None,
                       help="worker processes for --runner parallel "
                            "(default: CPU count)")
    run_p.add_argument("--task-timeout", type=float, default=None,
                       help="hard per-attempt deadline in seconds for "
                            "--runner parallel; a breaching attempt is "
                            "killed and retried")
    run_p.add_argument("--recovery-dir", default=None,
                       help="directory for durable job manifests "
                            "(checkpoint/resume state); --runner parallel")
    run_p.add_argument("--resume", action="store_true",
                       help="adopt completed tasks from the manifest in "
                            "--recovery-dir instead of re-running them")
    run_p.add_argument("--skip-budget", type=int, default=None,
                       help="max records a task may skip into quarantine "
                            "in record-skipping scenarios (R2; default "
                            "4096)")
    run_p.add_argument("--quarantine-dir", default=None,
                       help="keep quarantine side-files under this "
                            "directory instead of throwaway temp dirs "
                            "(R2)")
    run_p.add_argument("--transport",
                       choices=["direct", "channel", "network"],
                       default=None,
                       help="shuffle transport reducers fetch map "
                            "segments through (either runner; channel "
                            "adds CRC-framed streaming, network serves "
                            "segments over loopback TCP -- all "
                            "byte-identical output)")
    run_p.add_argument("--wire-codec", default=None,
                       help="codec segment bytes are compressed with on "
                            "the wire (--transport network; 'null' "
                            "serves verbatim via sendfile; see 'repro "
                            "codecs' for choices)")
    run_p.add_argument("--shuffle-port-base", type=int, default=None,
                       help="first TCP port for the network shuffle "
                            "servers (--transport network; default: "
                            "ephemeral ports)")
    run_p.add_argument("--fetch-retries", type=int, default=None,
                       help="extra fetch attempts per segment after the "
                            "first failure (default 3)")
    run_p.add_argument("--fetch-timeout", type=float, default=None,
                       help="per-fetch-attempt deadline in seconds "
                            "(default: none)")
    run_p.add_argument("--pipeline", dest="pipeline", default=None,
                       action="store_true",
                       help="pipelined shuffle: reducers run alongside "
                            "late maps and fetch each map's segments as "
                            "it commits (either runner; output and "
                            "counters stay byte-identical to the "
                            "barrier)")
    run_p.add_argument("--no-pipeline", dest="pipeline",
                       action="store_false",
                       help="force the map/reduce barrier even when "
                            "REPRO_PIPELINE is set")
    run_p.add_argument("--starvation-threshold", type=int, default=None,
                       help="missing-segment count at which a starved "
                            "pipelined reducer triggers speculative "
                            "re-execution of the late maps (default 2; "
                            "requires --pipeline)")
    run_p.add_argument("--memory-budget", type=int, default=None,
                       help="per-task memory ledger capacity in bytes "
                            "(>= 256; an enforced overrun triggers the "
                            "degrade-on-retry ladder -- the attempt is "
                            "retried with halved sort buffer and fetch "
                            "window; output stays byte-identical)")
    run_p.add_argument("--max-inflight-bytes", type=int, default=None,
                       help="byte-based fetch backpressure: cap on the "
                            "summed priced size of in-flight shuffle "
                            "fetches per reduce task (default: "
                            "count-based concurrency only)")
    run_p.add_argument("--max-memory-retries", type=int, default=None,
                       help="OOM-dead attempts of one task the degrade "
                            "ladder absorbs before the job fails "
                            "(default 2)")
    run_p.add_argument("--worker-rlimit", type=int, default=None,
                       help="real RLIMIT_AS address-space cap in bytes "
                            "applied to forked workers (--runner "
                            "parallel, Linux; allocations beyond it "
                            "raise genuine MemoryErrors)")
    run_p.add_argument("--num-hosts", type=int, default=None,
                       help="simulated hosts tasks and segment servers are "
                            "spread over (either runner; default 2)")
    run_p.add_argument("--max-host-reexecs", type=int, default=None,
                       help="max completed maps re-executed per lost host "
                            "before the job fails (default 2)")
    args = parser.parse_args(argv)

    if args.command == "codecs":
        from repro.mapreduce.codecs import (
            available_codecs,
            cost_categories,
            get_codec,
        )
        names = available_codecs()
        width = max(len(n) for n in names)
        for name in names:
            cats = "+".join(cost_categories(get_codec(name)))
            print(f"{name:<{width}}  cost: {cats}")
        return 0

    if args.command == "tune":
        return _run_tune(args, parser)

    if args.command == "serve":
        return _run_serve(args, parser)

    if args.command in ("submit", "status", "events", "jobs", "cancel",
                        "shutdown"):
        return _run_client(args, parser)

    registry = _registry()
    if args.command == "list":
        width = max(len(k) for k in registry)
        for key, (desc, _) in registry.items():
            print(f"{key:<{width}}  {desc}")
        return 0

    if args.scale is not None:
        if args.scale <= 0:
            parser.error("--scale must be positive")
        os.environ["REPRO_SCALE"] = str(args.scale)
    if args.runner is not None:
        os.environ["REPRO_RUNNER"] = args.runner
    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        os.environ["REPRO_WORKERS"] = str(args.workers)
    if args.resume and args.recovery_dir is None:
        parser.error("--resume requires --recovery-dir")
    parallel_only = [("--task-timeout", args.task_timeout is not None),
                     ("--recovery-dir", args.recovery_dir is not None),
                     ("--resume", args.resume)]
    if any(given for _, given in parallel_only):
        runner = args.runner or os.environ.get("REPRO_RUNNER", "serial")
        if runner.lower() != "parallel":
            flags = ", ".join(f for f, given in parallel_only if given)
            parser.error(f"{flags} require(s) --runner parallel")
    if args.task_timeout is not None:
        if args.task_timeout <= 0:
            parser.error("--task-timeout must be positive")
        os.environ["REPRO_TASK_TIMEOUT"] = str(args.task_timeout)
    if args.recovery_dir is not None:
        os.environ["REPRO_RECOVERY_DIR"] = args.recovery_dir
    if args.resume:
        os.environ["REPRO_RESUME"] = "1"
    if args.skip_budget is not None:
        if args.skip_budget < 1:
            parser.error("--skip-budget must be >= 1")
        os.environ["REPRO_SKIP_BUDGET"] = str(args.skip_budget)
    if args.quarantine_dir is not None:
        os.environ["REPRO_QUARANTINE_DIR"] = args.quarantine_dir
    network_only = [("--wire-codec", args.wire_codec is not None),
                    ("--shuffle-port-base",
                     args.shuffle_port_base is not None)]
    if any(given for _, given in network_only):
        transport = args.transport or os.environ.get("REPRO_TRANSPORT", "")
        if transport != "network":
            flags = ", ".join(f for f, given in network_only if given)
            parser.error(f"{flags} require(s) --transport network")
    if args.transport is not None:
        os.environ["REPRO_TRANSPORT"] = args.transport
    if args.wire_codec is not None:
        from repro.mapreduce.codecs import available_codecs
        if args.wire_codec not in available_codecs():
            parser.error(f"unknown --wire-codec {args.wire_codec!r}; "
                         f"try 'repro codecs'")
        os.environ["REPRO_WIRE_CODEC"] = args.wire_codec
    if args.shuffle_port_base is not None:
        if not 1024 <= args.shuffle_port_base <= 65535:
            parser.error("--shuffle-port-base must be in 1024..65535")
        os.environ["REPRO_SHUFFLE_PORT_BASE"] = str(args.shuffle_port_base)
    if args.fetch_retries is not None:
        if args.fetch_retries < 0:
            parser.error("--fetch-retries must be >= 0")
        os.environ["REPRO_FETCH_RETRIES"] = str(args.fetch_retries)
    if args.fetch_timeout is not None:
        if args.fetch_timeout <= 0:
            parser.error("--fetch-timeout must be positive")
        os.environ["REPRO_FETCH_TIMEOUT"] = str(args.fetch_timeout)
    if args.pipeline is not None:
        os.environ["REPRO_PIPELINE"] = "1" if args.pipeline else "0"
    if args.starvation_threshold is not None:
        if args.starvation_threshold < 1:
            parser.error("--starvation-threshold must be >= 1")
        pipelined = (args.pipeline if args.pipeline is not None
                     else os.environ.get("REPRO_PIPELINE", "")
                     .strip().lower() in ("1", "true", "yes", "on"))
        if not pipelined:
            parser.error("--starvation-threshold requires --pipeline")
        os.environ["REPRO_STARVATION_THRESHOLD"] = str(
            args.starvation_threshold)
    if args.memory_budget is not None:
        if args.memory_budget < 256:
            parser.error("--memory-budget must be >= 256 (one IFile block)")
        os.environ["REPRO_MEMORY_BUDGET"] = str(args.memory_budget)
    if args.max_inflight_bytes is not None:
        if args.max_inflight_bytes < 1:
            parser.error("--max-inflight-bytes must be >= 1")
        os.environ["REPRO_MAX_INFLIGHT_BYTES"] = str(args.max_inflight_bytes)
    if args.max_memory_retries is not None:
        if args.max_memory_retries < 1:
            parser.error("--max-memory-retries must be >= 1")
        os.environ["REPRO_MAX_MEMORY_RETRIES"] = str(args.max_memory_retries)
    if args.worker_rlimit is not None:
        if args.worker_rlimit < 1:
            parser.error("--worker-rlimit must be >= 1")
        runner = args.runner or os.environ.get("REPRO_RUNNER", "serial")
        if runner.lower() != "parallel":
            parser.error("--worker-rlimit requires --runner parallel")
        os.environ["REPRO_WORKER_RLIMIT_BYTES"] = str(args.worker_rlimit)
    if args.num_hosts is not None:
        if args.num_hosts < 1:
            parser.error("--num-hosts must be >= 1")
        os.environ["REPRO_NUM_HOSTS"] = str(args.num_hosts)
    if args.max_host_reexecs is not None:
        if args.max_host_reexecs < 0:
            parser.error("--max-host-reexecs must be >= 0")
        os.environ["REPRO_MAX_HOST_REEXECS"] = str(args.max_host_reexecs)

    ids = list(registry) if args.experiment.lower() == "all" else [
        args.experiment.upper()
    ]
    unknown = [i for i in ids if i not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"try 'python -m repro list'", file=sys.stderr)
        return 2
    for exp_id in ids:
        _, runner = registry[exp_id]
        print(runner().format_table())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
