"""Key aggregation (paper §IV).

Instead of one key per grid cell, a mapper's output is buffered, mapped
onto a space-filling curve, and emitted as aggregate keys -- contiguous
curve-index ranges carrying a packed block of values "stored in order".
Hadoop's assumption that keys are atomic (§II-B c) is removed by a
shuffle plugin that splits aggregate keys in two places (§IV-B):

* at *routing* time, when a range straddles reducer partition boundaries;
* at *sort* time on the reducer, when unequal ranges overlap (Fig 7).

Modules:

* :mod:`~repro.core.aggregation.ranges` -- coalescing sorted curve
  indices (with duplicates) into contiguous runs (Fig 6);
* :mod:`~repro.core.aggregation.blocks` -- dense and masked value blocks
  (masked blocks implement §IV-C alignment padding: "keys are allowed to
  contain empty space");
* :mod:`~repro.core.aggregation.aggregator` -- the buffering library the
  user's map code feeds pairs into (§IV-A);
* :mod:`~repro.core.aggregation.splitter` -- routing- and overlap-
  splitting of (range, block) pairs;
* :mod:`~repro.core.aggregation.plugin` -- the engine hook wiring it all
  into the shuffle;
* :mod:`~repro.core.aggregation.groups` -- reducer-side helpers that
  stack equal-range blocks into per-cell value sets.
"""

from repro.core.aggregation.blocks import BlockSerde, ValueBlock
from repro.core.aggregation.ranges import coalesce_indices, layered_runs
from repro.core.aggregation.aggregator import AggregationConfig, Aggregator
from repro.core.aggregation.splitter import split_at_boundaries, split_overlaps
from repro.core.aggregation.plugin import AggregateShufflePlugin
from repro.core.aggregation.groups import cells_of_group, stack_equal_blocks

__all__ = [
    "ValueBlock",
    "BlockSerde",
    "coalesce_indices",
    "layered_runs",
    "AggregationConfig",
    "Aggregator",
    "split_at_boundaries",
    "split_overlaps",
    "AggregateShufflePlugin",
    "cells_of_group",
    "stack_equal_blocks",
]
