"""Reducer-side helpers for aggregate key groups.

After overlap splitting, one reduce group is ``(RangeKey, [ValueBlock,
...])`` where every block covers exactly the key's range.  Queries then
need per-cell value sets; these helpers build them efficiently:

* :func:`stack_equal_blocks` -- the common dense case (every block dense,
  one value per cell per block) becomes a ``(k, count)`` matrix, so a
  holistic reduce like the sliding median is a single vectorized
  ``np.median(..., axis=0)``;
* :func:`cells_of_group` -- the general case (masked blocks, ragged
  multiplicities) yields ``(cell_offset, values_array)`` per covered
  cell.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.aggregation.blocks import ValueBlock
from repro.mapreduce.keys import RangeKey

__all__ = ["stack_equal_blocks", "cells_of_group"]


def _check_group(key: RangeKey, blocks: Sequence[ValueBlock]) -> None:
    if not blocks:
        raise ValueError("empty block group")
    for b in blocks:
        if b.count != key.count:
            raise ValueError(
                f"block covers {b.count} cells but group key spans {key.count}"
            )


def stack_equal_blocks(
    key: RangeKey, blocks: Sequence[ValueBlock]
) -> np.ndarray | None:
    """Stack dense blocks into a ``(k, count)`` matrix, or ``None``.

    Returns ``None`` when any block is masked -- callers fall back to
    :func:`cells_of_group`.
    """
    _check_group(key, blocks)
    if any(not b.is_dense() for b in blocks):
        return None
    return np.stack([b.values for b in blocks], axis=0)


def cells_of_group(
    key: RangeKey, blocks: Sequence[ValueBlock]
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(cell_offset, values)`` for each covered cell with data.

    ``cell_offset`` is relative to ``key.start``; ``values`` collects the
    valid entries for that cell across all blocks (possibly fewer than
    ``len(blocks)`` when masks exclude it).  Cells with no valid values
    are skipped.
    """
    _check_group(key, blocks)
    matrix = stack_equal_blocks(key, blocks)
    if matrix is not None:
        for off in range(key.count):
            yield off, matrix[:, off]
        return
    # General masked case: gather per cell.
    per_cell: list[list] = [[] for _ in range(key.count)]
    for block in blocks:
        mask = block.dense_mask()
        positions = np.flatnonzero(mask)
        for pos, value in zip(positions, block.values):
            per_cell[int(pos)].append(value)
    for off, vals in enumerate(per_cell):
        if vals:
            yield off, np.asarray(vals)
