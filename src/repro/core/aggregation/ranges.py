"""Coalescing curve indices into contiguous runs (Fig 6).

"Aggregation is then simple; each contiguous range of indices becomes an
aggregate key" -- the Fig 6 example collapses cells {1, 2, 7, 9, 10, 13}
into ranges ``1-2, 7, 9-10, 13``.

One wrinkle the figure does not show: a sliding-window mapper emits the
*same* cell several times (once per window that covers it), and a value
block can hold only one value per covered index.  :func:`layered_runs`
therefore decomposes duplicate-bearing input into layers -- occurrence 0
of every index, occurrence 1, ... -- and coalesces runs within each
layer.  For a k-wide window this yields about k long ranges instead of
per-cell fragmentation, preserving the aggregation win.
"""

from __future__ import annotations

import numpy as np

__all__ = ["coalesce_indices", "layered_runs"]


def coalesce_indices(indices: np.ndarray) -> list[tuple[int, int]]:
    """Collapse *sorted, distinct* indices into ``(start, count)`` runs.

    The literal Fig 6 operation.  Raises on unsorted or duplicate input
    (use :func:`layered_runs` for the general case).
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1:
        raise ValueError(f"indices must be 1-D, got shape {indices.shape}")
    n = indices.shape[0]
    if n == 0:
        return []
    gaps = np.diff(indices)
    if (gaps <= 0).any():
        raise ValueError("indices must be strictly increasing")
    breaks = np.flatnonzero(gaps > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks + 1, [n]))
    return [
        (int(indices[s]), int(e - s)) for s, e in zip(starts, ends)
    ]


def layered_runs(
    indices: np.ndarray, values: np.ndarray
) -> list[tuple[int, int, np.ndarray]]:
    """Decompose (index, value) pairs into contiguous runs with values.

    Input need not be sorted and may contain duplicate indices.  Returns
    ``(start, count, values)`` tuples where ``values[j]`` belongs to
    curve index ``start + j``.  Duplicates are spread across layers:
    occurrence ``r`` of every index lands in layer ``r``, and each layer
    is coalesced independently.  Within a duplicate group, occurrences
    keep their input order (stable), so deterministic inputs produce
    deterministic output.
    """
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values)
    if indices.ndim != 1 or values.ndim != 1:
        raise ValueError("indices and values must be 1-D")
    if indices.shape[0] != values.shape[0]:
        raise ValueError(
            f"{indices.shape[0]} indices vs {values.shape[0]} values"
        )
    n = indices.shape[0]
    if n == 0:
        return []

    order = np.argsort(indices, kind="stable")
    idx = indices[order]
    vals = values[order]

    # occurrence rank within each duplicate group
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(idx[1:], idx[:-1], out=new_group[1:])
    group_starts = np.flatnonzero(new_group)
    group_lengths = np.diff(np.append(group_starts, n))
    rank = np.arange(n, dtype=np.int64) - np.repeat(group_starts, group_lengths)

    out: list[tuple[int, int, np.ndarray]] = []
    for layer in range(int(rank.max()) + 1):
        sel = rank == layer
        lidx = idx[sel]
        lvals = vals[sel]
        m = lidx.shape[0]
        breaks = np.flatnonzero(np.diff(lidx) != 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks + 1, [m]))
        for s, e in zip(starts, ends):
            out.append((int(lidx[s]), int(e - s), lvals[s:e]))
    return out
