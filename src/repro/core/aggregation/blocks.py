"""Value blocks: the payload of an aggregate key.

An aggregate key ``RangeKey(var, start, count)`` carries one value per
covered curve index, packed densely in index order -- the "values can be
stored in order" precondition of the paper's (corner, size) argument.

Two wire layouts share one class:

* **dense** -- every covered cell has a value; payload is the raw
  little-endian array (zero per-value overhead, the Fig 8 win);
* **masked** -- §IV-C alignment padding: the range was expanded to an
  alignment boundary, so some covered cells are empty; a validity bitmap
  precedes the values of the non-empty cells.

Wire format: ``flag`` byte (0 dense, 1 masked), vint cell count,
``[bitmap]`` (masked only, ceil(count/8) bytes, LSB-first), raw values.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mapreduce.serde import Serde
from repro.util.varint import read_vlong, write_vlong

__all__ = ["ValueBlock", "BlockSerde"]

_FLAG_DENSE = 0
_FLAG_MASKED = 1


class ValueBlock:
    """Values for the cells of one aggregate range.

    ``count`` is the number of covered curve indices; ``mask`` is either
    ``None`` (dense: every cell valid) or a bool array of length
    ``count``; ``values`` holds one entry per *valid* cell, in index
    order.
    """

    __slots__ = ("count", "values", "mask")

    def __init__(self, count: int, values: np.ndarray, mask: np.ndarray | None = None) -> None:
        if count <= 0:
            raise ValueError(f"block count must be positive, got {count}")
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        if mask is None:
            if values.shape[0] != count:
                raise ValueError(
                    f"dense block needs {count} values, got {values.shape[0]}"
                )
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape[0] != count:
                raise ValueError(
                    f"mask length {mask.shape[0]} != count {count}"
                )
            if int(mask.sum()) != values.shape[0]:
                raise ValueError(
                    f"{values.shape[0]} values but mask marks {int(mask.sum())} valid"
                )
            if mask.all():
                mask = None  # canonical form: fully-valid is dense
        self.count = count
        self.values = values
        self.mask = mask

    @property
    def valid_cells(self) -> int:
        return self.values.shape[0]

    def is_dense(self) -> bool:
        return self.mask is None

    def slice(self, lo: int, hi: int) -> "ValueBlock":
        """Sub-block for cell offsets ``[lo, hi)`` relative to the range start."""
        if not 0 <= lo < hi <= self.count:
            raise ValueError(f"bad slice [{lo}, {hi}) of {self.count}-cell block")
        if self.mask is None:
            return ValueBlock(hi - lo, self.values[lo:hi])
        # values are packed over valid cells: offset by popcount prefix
        prefix = np.count_nonzero(self.mask[:lo])
        inner = np.count_nonzero(self.mask[lo:hi])
        return ValueBlock(
            hi - lo,
            self.values[prefix:prefix + inner],
            self.mask[lo:hi],
        )

    def expand(self, pad_before: int, pad_after: int) -> "ValueBlock":
        """Grow the block with empty cells on both sides (§IV-C padding)."""
        if pad_before < 0 or pad_after < 0:
            raise ValueError("padding must be non-negative")
        if pad_before == 0 and pad_after == 0:
            return self
        count = self.count + pad_before + pad_after
        mask = np.zeros(count, dtype=bool)
        if self.mask is None:
            mask[pad_before:pad_before + self.count] = True
        else:
            mask[pad_before:pad_before + self.count] = self.mask
        return ValueBlock(count, self.values, mask)

    def dense_mask(self) -> np.ndarray:
        """The validity mask as a bool array (all-True when dense)."""
        if self.mask is None:
            return np.ones(self.count, dtype=bool)
        return self.mask

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ValueBlock):
            return NotImplemented
        return (
            self.count == other.count
            and np.array_equal(self.dense_mask(), other.dense_mask())
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dense" if self.is_dense() else "masked"
        return f"ValueBlock({kind}, count={self.count}, valid={self.valid_cells})"


class BlockSerde(Serde):
    """Wire form of :class:`ValueBlock` for one value dtype."""

    def __init__(self, dtype: np.dtype | str) -> None:
        self.dtype = np.dtype(dtype).newbyteorder("<")
        if self.dtype.itemsize == 0:
            raise ValueError(f"dtype {dtype!r} has zero itemsize")

    def write(self, obj: ValueBlock, out: bytearray) -> None:
        values = np.ascontiguousarray(obj.values, dtype=self.dtype)
        if obj.mask is None:
            out.append(_FLAG_DENSE)
            write_vlong(obj.count, out)
        else:
            out.append(_FLAG_MASKED)
            write_vlong(obj.count, out)
            out.extend(np.packbits(obj.mask, bitorder="little").tobytes())
        out.extend(values.tobytes())

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[ValueBlock, int]:
        if offset >= len(buf):
            raise ValueError("empty block")
        flag = buf[offset]
        offset += 1
        count, offset = read_vlong(buf, offset)
        if count <= 0:
            raise ValueError(f"bad block count {count}")
        mask = None
        valid = count
        if flag == _FLAG_MASKED:
            nmask = (count + 7) // 8
            if offset + nmask > len(buf):
                raise ValueError("truncated block mask")
            # Zero-copy view of the bitmap bytes (unpackbits allocates
            # the expanded mask, but the packed input is not sliced out).
            bits = np.frombuffer(buf, dtype=np.uint8, count=nmask, offset=offset)
            mask = np.unpackbits(bits, bitorder="little")[:count].astype(bool)
            valid = int(mask.sum())
            offset += nmask
        elif flag != _FLAG_DENSE:
            raise ValueError(f"unknown block flag {flag}")
        nbytes = valid * self.dtype.itemsize
        if offset + nbytes > len(buf):
            raise ValueError("truncated block values")
        # Zero-copy: the value array is a read-only view over the
        # caller's buffer, not a slice copy -- the aggregate-key reduce
        # path decodes millions of cells through here.
        values = np.frombuffer(buf, dtype=self.dtype, count=valid, offset=offset)
        return ValueBlock(count, values, mask), offset + nbytes
