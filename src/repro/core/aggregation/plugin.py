"""The shuffle plugin wiring aggregation into the engine (§IV-B).

This object is the reproduction of the paper's "one set of changes
inside Hadoop ... which allows aggregate keys to be split during the
routing and sorting phases":

* :meth:`route` -- called per emitted record on the map side; splits the
  aggregate range at the total-order partition boundaries and assigns
  each piece to its reducer;
* :meth:`prepare_reduce` -- called on the reducer's merged record list
  before grouping; splits overlapping ranges on overlap boundaries
  (Fig 7) and re-sorts, so byte-equal keys group all data for the same
  simple keys.
"""

from __future__ import annotations

from repro.core.aggregation.aggregator import AggregationConfig
from repro.core.aggregation.reaggregate import merge_adjacent_groups
from repro.core.aggregation.splitter import split_at_boundaries, split_overlaps
from repro.mapreduce.partition import CurveRangePartitioner

__all__ = ["AggregateShufflePlugin"]

Record = tuple[bytes, bytes]


class AggregateShufflePlugin:
    """Route and re-sort aggregate (RangeKey, ValueBlock) records.

    ``reaggregate=True`` enables the paper's §IV-B future-work proposal:
    after overlap splitting, adjacent same-depth groups are fused to
    offset the key-count increase (see
    :mod:`repro.core.aggregation.reaggregate`; ablation A6).
    """

    def __init__(self, config: AggregationConfig,
                 reaggregate: bool = False) -> None:
        self.config = config
        self.reaggregate = reaggregate
        self._key_serde = config.key_serde()
        self._block_serde = config.block_serde()
        self._curve_size = config.make_curve().size
        self._partitioners: dict[int, CurveRangePartitioner] = {}
        #: how many extra records routing splits created (introspection)
        self.routing_splits = 0
        #: key-count trajectory through the reduce-side passes, summed
        #: over reduce tasks: records in, after overlap split, after
        #: re-aggregation (== after split when disabled)
        self.reduce_records_in = 0
        self.reduce_records_split = 0
        self.reduce_records_out = 0

    def _partitioner(self, num_reducers: int) -> CurveRangePartitioner:
        part = self._partitioners.get(num_reducers)
        if part is None:
            part = CurveRangePartitioner(num_reducers, self._curve_size)
            self._partitioners[num_reducers] = part
        return part

    def route(
        self, key_bytes: bytes, value_bytes: bytes, num_reducers: int
    ) -> list[tuple[int, bytes, bytes]]:
        part = self._partitioner(num_reducers)
        key = self._key_serde.from_bytes(key_bytes)
        block = self._block_serde.from_bytes(value_bytes)
        pieces = split_at_boundaries(key, block, part.split_points())
        self.routing_splits += len(pieces) - 1
        out: list[tuple[int, bytes, bytes]] = []
        for pkey, pblock in pieces:
            reducer = part.check_range(pkey)
            if len(pieces) == 1:
                out.append((reducer, key_bytes, value_bytes))
                continue
            kb = bytearray()
            self._key_serde.write(pkey, kb)
            vb = bytearray()
            self._block_serde.write(pblock, vb)
            out.append((reducer, bytes(kb), bytes(vb)))
        return out

    def prepare_reduce(self, records: list[Record]) -> list[Record]:
        pairs = []
        for kb, vb in records:
            pairs.append(
                (self._key_serde.from_bytes(kb), self._block_serde.from_bytes(vb))
            )
        split = split_overlaps(pairs)
        self.reduce_records_in += len(pairs)
        self.reduce_records_split += len(split)
        if self.reaggregate:
            split = merge_adjacent_groups(split)
        self.reduce_records_out += len(split)
        out: list[Record] = []
        for key, block in split:
            kb = bytearray()
            self._key_serde.write(key, kb)
            vb = bytearray()
            self._block_serde.write(block, vb)
            out.append((bytes(kb), bytes(vb)))
        return out
