"""Key splitting (§IV-B, Fig 7).

Two cases, quoted from the paper:

* "A mapper may generate an aggregate key whose simple keys do not all
  route to the same reducer" -- :func:`split_at_boundaries` cuts a
  (range, block) pair at the total-order partitioner's boundary indices
  so each piece routes whole.
* "When sorting keys at a reducer, overlapping keys are split along the
  overlap boundaries ... unequal overlapping keys contain data that map
  to the same simple keys, but since the aggregate keys are unequal, the
  data would not be reduced together" -- :func:`split_overlaps` cuts
  every range at every other range's endpoints, after which overlapping
  ranges are *equal* and group correctly.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

from repro.core.aggregation.blocks import ValueBlock
from repro.mapreduce.keys import RangeKey

__all__ = ["split_at_boundaries", "split_overlaps"]

Pair = tuple[RangeKey, ValueBlock]


def _cut(key: RangeKey, block: ValueBlock, cuts: Sequence[int]) -> list[Pair]:
    """Split one (range, block) at the given absolute curve indices.

    ``cuts`` must be sorted; only cuts strictly inside the range apply.
    """
    lo_i = bisect_right(cuts, key.start)
    hi_i = bisect_left(cuts, key.end)
    inner = list(cuts[lo_i:hi_i])
    if not inner:
        return [(key, block)]
    edges = [key.start] + inner + [key.end]
    out: list[Pair] = []
    for a, b in zip(edges[:-1], edges[1:]):
        piece = block.slice(a - key.start, b - key.start)
        out.append((RangeKey(key.variable, a, b - a), piece))
    return out


def split_at_boundaries(
    key: RangeKey, block: ValueBlock, boundaries: Sequence[int]
) -> list[Pair]:
    """Routing-time split at partition boundaries (sorted ascending)."""
    if block.count != key.count:
        raise ValueError(
            f"block covers {block.count} cells but key spans {key.count}"
        )
    return _cut(key, block, sorted(boundaries))


def split_overlaps(pairs: list[Pair]) -> list[Pair]:
    """Reducer-side overlap splitting (Fig 7).

    Cuts every range at every distinct endpoint of any overlapping range
    of the same variable, then returns the pieces sorted by
    ``(variable, start, count)`` -- the grouping order.  After this,
    ranges of one variable either coincide exactly or are disjoint, so
    byte-equal keys group all data for the same simple keys.
    """
    by_var: dict[object, list[Pair]] = {}
    for key, block in pairs:
        if block.count != key.count:
            raise ValueError(
                f"block covers {block.count} cells but key spans {key.count}"
            )
        by_var.setdefault(key.variable, []).append((key, block))

    out: list[Pair] = []
    for variable in by_var:
        var_pairs = by_var[variable]
        endpoints: set[int] = set()
        for key, _ in var_pairs:
            endpoints.add(key.start)
            endpoints.add(key.end)
        cuts = sorted(endpoints)
        for key, block in var_pairs:
            out.extend(_cut(key, block, cuts))
    out.sort(key=lambda p: (str(p[0].variable), p[0].start, p[0].count))
    return out
