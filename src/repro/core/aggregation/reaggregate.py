"""Reducer-side re-aggregation (the paper's §IV-B future work).

"Aggregation is currently performed only inside mappers.  It could also
be performed in other places to offset the increase in key count caused
by key splitting.  We have not yet determined how much the key count is
increased by key splitting, or whether further aggregation would be
worth the overhead."

This module implements that proposal and ablation A6 measures both open
questions.  After overlap splitting, the reducer's record stream contains
groups of byte-equal range keys.  Two *adjacent* groups can merge into
one when:

* same variable,
* the second group's range starts exactly where the first ends, and
* both groups hold the same number of value blocks (the same stack
  depth), so blocks pair up one-to-one.

Because the reduce functions here are per-cell (each covered cell's
values are independent), any pairing of blocks across the two groups is
semantically equivalent; we pair in stream order.  Merging reduces key
count (fewer group keys, less framing, fewer reduce invocations) at the
cost of one extra pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation.blocks import ValueBlock
from repro.mapreduce.keys import RangeKey

__all__ = ["merge_adjacent_groups", "concat_blocks"]

Pair = tuple[RangeKey, ValueBlock]


def concat_blocks(a: ValueBlock, b: ValueBlock) -> ValueBlock:
    """Concatenate two blocks covering adjacent ranges (a then b)."""
    count = a.count + b.count
    values = np.concatenate([a.values, b.values])
    if a.is_dense() and b.is_dense():
        return ValueBlock(count, values)
    mask = np.concatenate([a.dense_mask(), b.dense_mask()])
    return ValueBlock(count, values, mask)


def _group_stream(pairs: list[Pair]) -> list[tuple[RangeKey, list[ValueBlock]]]:
    """Group consecutive equal keys (the stream is already key-sorted)."""
    groups: list[tuple[RangeKey, list[ValueBlock]]] = []
    for key, block in pairs:
        if groups and groups[-1][0] == key:
            groups[-1][1].append(block)
        else:
            groups.append((key, [block]))
    return groups


def merge_adjacent_groups(pairs: list[Pair]) -> list[Pair]:
    """Re-aggregate a key-sorted, overlap-split record stream.

    Returns a flat record list (equal keys adjacent) with adjacent
    same-depth groups fused.  Input order within groups is preserved;
    the result remains sorted by ``(variable, start)``.
    """
    if not pairs:
        return []
    groups = _group_stream(pairs)
    merged: list[tuple[RangeKey, list[ValueBlock]]] = [groups[0]]
    for key, blocks in groups[1:]:
        prev_key, prev_blocks = merged[-1]
        if (
            key.variable == prev_key.variable
            and key.start == prev_key.end
            and len(blocks) == len(prev_blocks)
        ):
            fused_key = RangeKey(
                prev_key.variable, prev_key.start, prev_key.count + key.count
            )
            fused_blocks = [
                concat_blocks(pb, b) for pb, b in zip(prev_blocks, blocks)
            ]
            merged[-1] = (fused_key, fused_blocks)
        else:
            merged.append((key, blocks))
    out: list[Pair] = []
    for key, blocks in merged:
        for block in blocks:
            out.append((key, block))
    return out
