"""The aggregation library the user's map code feeds (§IV-A).

"Instead of passing intermediate key/value pairs directly to Hadoop, the
user's code passes the key/value pairs to our library.  The library
aggregates key/value pairs and periodically passes the aggregated
key/value pairs to Hadoop."

The :class:`Aggregator` buffers (coordinate, value) pairs, maps the
coordinates to curve indices (vectorized), and on flush coalesces them
into (RangeKey, ValueBlock) records emitted through the map context.
Flushing is bounded: "Aggregation is performed on subsets of the
intermediate data due to memory limitations.  Whenever the size of the
aggregation buffer reaches a set threshold, the results are written out
and the buffer is cleared" -- keys generated after a flush cannot
aggregate with keys generated before it (ablation A2 measures the cost).

§IV-C alignment is supported: with ``alignment > 1`` every emitted range
is expanded outward to alignment boundaries using masked blocks, raising
the chance that overlapping keys from different mappers are *equal* and
need no reducer-side splitting (ablation A3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregation.blocks import BlockSerde, ValueBlock
from repro.core.aggregation.ranges import layered_runs
from repro.mapreduce.api import MapContext
from repro.mapreduce.keys import RangeKeySerde
from repro.sfc.base import Curve, get_curve

__all__ = ["AggregationConfig", "Aggregator"]


@dataclass(frozen=True)
class AggregationConfig:
    """Everything the aggregation data path needs to agree on."""

    curve: str = "zorder"
    ndim: int = 2
    bits: int = 10
    dtype: str = "int32"
    #: flush threshold in buffered cells (§IV-A memory bound)
    buffer_cells: int = 1 << 20
    #: §IV-C: expand ranges to multiples of this (1 = no padding)
    alignment: int = 1
    variable_mode: str = "name"

    def __post_init__(self) -> None:
        if self.buffer_cells < 1:
            raise ValueError(f"buffer_cells must be >= 1, got {self.buffer_cells}")
        if self.alignment < 1:
            raise ValueError(f"alignment must be >= 1, got {self.alignment}")

    def make_curve(self) -> Curve:
        return get_curve(self.curve, self.ndim, self.bits)

    def key_serde(self) -> RangeKeySerde:
        return RangeKeySerde(self.variable_mode)

    def block_serde(self) -> BlockSerde:
        return BlockSerde(self.dtype)


class Aggregator:
    """Per-map-task aggregation buffer for one variable.

    Coordinates must be non-negative and fit the configured curve; a
    sliding-window query therefore clips its halo to the grid (or offsets
    coordinates) before adding.
    """

    def __init__(self, config: AggregationConfig, variable: str | int,
                 ctx: MapContext) -> None:
        self.config = config
        self.variable = variable
        self.ctx = ctx
        self.curve = config.make_curve()
        self._key_serde = config.key_serde()
        self._block_serde = config.block_serde()
        self._index_chunks: list[np.ndarray] = []
        self._value_chunks: list[np.ndarray] = []
        self._buffered = 0
        #: total aggregate records emitted (for tests/ablations)
        self.emitted_ranges = 0
        #: total cells emitted
        self.emitted_cells = 0
        self.flushes = 0

    def add(self, coords: np.ndarray, values: np.ndarray) -> None:
        """Buffer many (coordinate, value) pairs (vectorized)."""
        coords = np.asarray(coords)
        values = np.asarray(values).ravel()
        if coords.ndim != 2 or coords.shape[1] != self.curve.ndim:
            raise ValueError(
                f"expected (n, {self.curve.ndim}) coords, got {coords.shape}"
            )
        if coords.shape[0] != values.shape[0]:
            raise ValueError(
                f"{coords.shape[0]} coords vs {values.shape[0]} values"
            )
        if coords.shape[0] == 0:
            return
        self._index_chunks.append(self.curve.encode(coords))
        self._value_chunks.append(values)
        self._buffered += values.shape[0]
        if self._buffered >= self.config.buffer_cells:
            self.flush()

    def add_indices(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Buffer pairs already mapped to curve indices."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values).ravel()
        if indices.shape[0] != values.shape[0]:
            raise ValueError(
                f"{indices.shape[0]} indices vs {values.shape[0]} values"
            )
        if indices.shape[0] == 0:
            return
        if indices.size and (indices.min() < 0 or indices.max() >= self.curve.size):
            raise ValueError(f"indices outside [0, {self.curve.size})")
        self._index_chunks.append(indices)
        self._value_chunks.append(values)
        self._buffered += values.shape[0]
        if self._buffered >= self.config.buffer_cells:
            self.flush()

    def flush(self) -> None:
        """Coalesce and emit everything buffered."""
        if self._buffered == 0:
            return
        indices = np.concatenate(self._index_chunks)
        values = np.concatenate(self._value_chunks)
        self._index_chunks.clear()
        self._value_chunks.clear()
        self._buffered = 0
        self.flushes += 1

        align = self.config.alignment
        runs: list[tuple[int, int, ValueBlock]] = []
        for start, count, run_values in layered_runs(indices, values):
            block = ValueBlock(count, run_values)
            if align > 1:
                astart = (start // align) * align
                aend = -(-(start + count) // align) * align
                aend = min(aend, self.curve.size)  # stay on the curve
                block = block.expand(start - astart, aend - (start + count))
                start, count = astart, aend - astart
            runs.append((start, count, block))
        if not runs:
            return
        # One vectorized pass for every range key of this flush instead
        # of a serde call per run (a flush can coalesce into thousands of
        # short runs when the buffer is fragmented).
        key_blobs = self._key_serde.write_batch(
            self.variable,
            np.fromiter((r[0] for r in runs), np.int64, len(runs)),
            np.fromiter((r[1] for r in runs), np.int64, len(runs)),
        )
        for kb, (_, _, block) in zip(key_blobs, runs):
            vb = bytearray()
            self._block_serde.write(block, vb)
            self.ctx.emit_serialized(kb, bytes(vb))
            self.emitted_ranges += 1
            self.emitted_cells += block.valid_cells

    def close(self) -> None:
        """Flush any remaining buffered pairs (call from mapper cleanup)."""
        self.flush()
