"""The paper's primary contributions.

* :mod:`repro.core.stride` -- semantically-informed byte-level compression
  (§III): an adaptive stride/linear-sequence predictor applied to the
  serialized intermediate stream before a generic compressor.
* :mod:`repro.core.aggregation` -- key aggregation (§IV): space-filling
  curve ranges as aggregate keys, with routing- and sort-time key
  splitting.
"""
