"""Metadata-derived stride prediction (§III's alternative to detection).

"Another method of determining stride length would be to derive it from
metadata.  This would include the dimensionality of the data, the length
of the variable name, and the shape of the data. ... This can
theoretically be accomplished but requires detailed knowledge of the
file format."

We have that detailed knowledge -- the serdes and framings are ours -- so
this module computes the candidate strides exactly:

* the *record pitch*: framing overhead + key size + value size, the
  stride of the fastest-varying coordinate byte;
* *rollover pitches*: multiples of the record pitch at which the next
  coordinate dimension advances (``shape[-1]`` records for dimension
  -2, ``shape[-1]*shape[-2]`` for dimension -3, ...), clipped to the
  detector's maximum -- these are "a small multiple of the size of the
  serialized key/value pair" (§III);
* for SequenceFile framing, a warning-carrying estimate: sync markers
  break exact periodicity (the paper's record-groups-with-markers
  example: "the optimal stride actually turns out to be the size of an
  entire group plus a marker").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.mapreduce.keys import CellKeySerde
from repro.util.varint import vint_size

__all__ = ["StrideAdvice", "advise_strides", "record_pitch"]


@dataclass(frozen=True)
class StrideAdvice:
    """Predicted strides for a serialized cell-key stream."""

    #: bytes from one record's start to the next
    record_pitch: int
    #: record pitch plus dimension-rollover multiples, ascending
    candidates: tuple[int, ...]
    #: framing caveats (e.g. sync markers) that break exact periodicity
    caveats: tuple[str, ...]


def record_pitch(
    key_serde: CellKeySerde,
    variable: str | int,
    value_size: int,
    framing: str = "ifile",
) -> int:
    """Exact bytes per record for the given key layout and framing."""
    if value_size < 0:
        raise ValueError(f"value_size must be >= 0, got {value_size}")
    key_size = key_serde.key_size(variable)
    if framing == "ifile":
        return vint_size(key_size) + vint_size(value_size) + key_size + value_size
    if framing == "seqfile":
        return 8 + key_size + value_size  # two int32 length words
    if framing == "raw":
        return key_size + value_size
    raise ValueError(f"framing must be ifile/seqfile/raw, got {framing!r}")


def advise_strides(
    key_serde: CellKeySerde,
    variable: str | int,
    value_size: int,
    shape: Sequence[int],
    framing: str = "ifile",
    max_stride: int = 100,
    sync_interval: int | None = None,
) -> StrideAdvice:
    """Candidate strides for a C-order walk of ``shape``.

    The returned candidates can seed
    :func:`~repro.core.stride.fixed.fixed_forward_transform` directly,
    skipping the adaptive search entirely (the "user specifies lengths"
    mode of §III, but computed rather than guessed).
    """
    if len(shape) != key_serde.ndim:
        raise ValueError(
            f"shape has {len(shape)} dims, key serde expects {key_serde.ndim}"
        )
    if any(s < 1 for s in shape):
        raise ValueError(f"shape must be positive, got {tuple(shape)}")
    pitch = record_pitch(key_serde, variable, value_size, framing)
    candidates = [pitch]
    rollover = 1
    # dimension -1 varies every record; -2 every shape[-1] records, etc.
    for extent in reversed(shape[1:]):
        rollover *= extent
        stride = pitch * rollover
        if stride <= max_stride:
            candidates.append(stride)
    caveats = []
    if framing == "seqfile":
        interval = sync_interval if sync_interval is not None else 2000
        approx_records = max(1, interval // pitch)
        caveats.append(
            f"sync markers every ~{approx_records} records shift phases "
            f"by 20 bytes; periodicity is broken at group boundaries "
            f"(cf. the paper's records-plus-markers example)"
        )
    return StrideAdvice(
        record_pitch=pitch,
        candidates=tuple(sorted(set(candidates))),
        caveats=tuple(caveats),
    )
