"""Pluggable stride codecs (§III-E).

"A custom codec applied the transform and then compressed the data with
the built-in zlib compressor."  These classes register the paper's codec
-- transform + generic compressor -- plus variants, into the engine's
codec registry:

* ``stride+zlib`` / ``stride+bz2`` -- the exact §III transform;
* ``fastpred+zlib`` / ``fastpred+bz2`` -- the vectorized block predictor.

The transform's CPU time is recorded separately from the generic
compressor's (``transform_seconds``) so E6 can report the paper's key
diagnostic: "the runtime cost of the transform ... is roughly 2.9 times
the cost of gzip alone."
"""

from __future__ import annotations

import bz2
import time
import zlib

from repro.core.stride.fast import fast_forward_transform, fast_inverse_transform
from repro.core.stride.model import StrideConfig
from repro.core.stride.transform import forward_transform, inverse_transform
from repro.mapreduce.codecs import Codec, register_codec

__all__ = [
    "StrideZlibCodec",
    "StrideBz2Codec",
    "FastPredZlibCodec",
    "FastPredBz2Codec",
]


class _TransformCodec(Codec):
    """Shared plumbing: forward/inverse transform around a compressor."""

    def __init__(self) -> None:
        super().__init__()
        #: CPU seconds spent in the transform itself (both directions)
        self.transform_seconds = 0.0
        #: CPU seconds spent in the generic compressor alone
        self.backend_seconds = 0.0

    # hooks -------------------------------------------------------------
    def _transform(self, data: bytes) -> bytes:
        raise NotImplementedError

    def _untransform(self, data: bytes) -> bytes:
        raise NotImplementedError

    def _backend_compress(self, data: bytes) -> bytes:
        raise NotImplementedError

    def _backend_decompress(self, data: bytes) -> bytes:
        raise NotImplementedError

    # codec interface -----------------------------------------------------
    def _compress(self, data: bytes) -> bytes:
        t0 = time.perf_counter()
        transformed = self._transform(data)
        t1 = time.perf_counter()
        out = self._backend_compress(transformed)
        t2 = time.perf_counter()
        self.transform_seconds += t1 - t0
        self.backend_seconds += t2 - t1
        return out

    def _decompress(self, data: bytes) -> bytes:
        t0 = time.perf_counter()
        transformed = self._backend_decompress(data)
        t1 = time.perf_counter()
        out = self._untransform(transformed)
        t2 = time.perf_counter()
        self.backend_seconds += t1 - t0
        self.transform_seconds += t2 - t1
        return out


class _ZlibBackend:
    level = 6

    def _backend_compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def _backend_decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


class _Bz2Backend:
    level = 9

    def _backend_compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.level)

    def _backend_decompress(self, data: bytes) -> bytes:
        # bz2.decompress(b"") returns b"" instead of raising; treat a
        # zero-length input as the truncated stream it is.
        if not data:
            raise EOFError("empty bz2 stream")
        return bz2.decompress(data)


class _ExactStrideMixin:
    """Transform hooks running the exact per-byte §III algorithm."""

    def __init__(self, max_stride: int = 100) -> None:
        super().__init__()
        self.config = StrideConfig(max_stride=max_stride)

    def _transform(self, data: bytes) -> bytes:
        return forward_transform(data, self.config)

    def _untransform(self, data: bytes) -> bytes:
        return inverse_transform(data, self.config)


class _FastPredMixin:
    """Transform hooks running the vectorized block predictor."""

    def __init__(self, max_stride: int = 100, chunk_size: int = 1 << 16) -> None:
        super().__init__()
        self.max_stride = max_stride
        self.chunk_size = chunk_size

    def _transform(self, data: bytes) -> bytes:
        return fast_forward_transform(data, self.max_stride, self.chunk_size)

    def _untransform(self, data: bytes) -> bytes:
        return fast_inverse_transform(data, self.max_stride, self.chunk_size)


@register_codec
class StrideZlibCodec(_ExactStrideMixin, _ZlibBackend, _TransformCodec):
    """§III-E's codec: exact stride transform + zlib."""

    name = "stride+zlib"


@register_codec
class StrideBz2Codec(_ExactStrideMixin, _Bz2Backend, _TransformCodec):
    """Exact stride transform + bzip2 (the Fig 3 'transform+bzip' row)."""

    name = "stride+bz2"


@register_codec
class FastPredZlibCodec(_FastPredMixin, _ZlibBackend, _TransformCodec):
    """Vectorized block predictor + zlib (scales to paper-sized inputs)."""

    name = "fastpred+zlib"


@register_codec
class FastPredBz2Codec(_FastPredMixin, _Bz2Backend, _TransformCodec):
    """Vectorized block predictor + bzip2."""

    name = "fastpred+bz2"
