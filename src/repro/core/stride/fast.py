"""Vectorized block predictor -- our scalable variant of §III.

The exact §III algorithm is inherently per-byte (every byte's prediction
depends on adaptively chosen state), which is slow in pure Python at
paper scale.  This variant restructures the same idea -- predict each
byte from the bytes one and two strides back -- so that both directions
are pure numpy:

* the stream is processed in fixed chunks;
* each chunk's stride is chosen from the *previous, already reconstructed*
  chunk (so the decoder recomputes it; no header bytes), by counting how
  often the lag-``s`` byte difference repeats;
* within a chunk the residual is the second difference along the stride:
  ``y_i = x_i - 2*x_{i-s} + x_{i-2s}`` (mod 256), i.e. an order-2 linear
  predictor.  This predicts exactly the sequences of paper eq. (1):
  whenever ``x_{i-s} = x_{i-2s} + delta`` held and ``x_i = x_{i-s} +
  delta`` continues, the residual is zero -- without tracking ``delta``
  explicitly;
* inversion is two per-phase prefix sums (the second difference is
  inverted by a double cumulative sum mod 256), so decode is vectorized
  too.

Ablation A5 measures what this buys and costs versus the exact
algorithm: orders of magnitude more throughput, with a somewhat larger
residual file because a single stride serves a whole chunk.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "fast_forward_transform",
    "fast_inverse_transform",
    "select_stride",
    "DEFAULT_CHUNK",
]

DEFAULT_CHUNK = 1 << 16


def select_stride(prev_chunk: np.ndarray, max_stride: int) -> int:
    """Pick the stride for a chunk from the previous chunk's bytes.

    Scores stride ``s`` by how many positions satisfy
    ``x[i] - x[i-s] == x[i-s] - x[i-2s]`` (mod 256) in ``prev_chunk`` --
    exactly the positions the order-2 predictor would nail.  Returns 0
    (identity / no prediction) when nothing scores better than chance.
    Deterministic: ties break toward the smallest stride, so encoder and
    decoder always agree.
    """
    n = prev_chunk.shape[0]
    if n == 0:
        return 0
    x = prev_chunk.astype(np.int16)
    best_s = 0
    best_score = n // 4  # require a clearly-better-than-noise score
    limit = min(max_stride, (n - 1) // 2)
    for s in range(1, limit + 1):
        d = (x[s:] - x[:-s]) & 0xFF
        score = int(np.count_nonzero(d[s:] == d[:-s]))
        # Normalize: longer strides see fewer comparison positions.
        score = score * n // max(1, n - 2 * s)
        if score > best_score:
            best_score = score
            best_s = s
    return best_s


def _second_diff(chunk: np.ndarray, stride: int) -> np.ndarray:
    """Residual of one chunk under the order-2 predictor (vectorized)."""
    n = chunk.shape[0]
    nrows = -(-n // stride)
    padded = np.zeros(nrows * stride, dtype=np.int64)
    padded[:n] = chunk
    mat = padded.reshape(nrows, stride)
    out = np.empty_like(mat)
    out[0] = mat[0]
    if nrows > 1:
        out[1] = mat[1] - mat[0]
    if nrows > 2:
        out[2:] = mat[2:] - 2 * mat[1:-1] + mat[:-2]
    return (out.reshape(-1)[:n]) & 0xFF


def _double_cumsum(chunk: np.ndarray, stride: int) -> np.ndarray:
    """Inverse of :func:`_second_diff`: double per-phase prefix sum mod 256."""
    n = chunk.shape[0]
    nrows = -(-n // stride)
    padded = np.zeros(nrows * stride, dtype=np.int64)
    padded[:n] = chunk
    mat = padded.reshape(nrows, stride)
    # Let z[r] be the lag-s differences (z[0] = x[0]).  The forward
    # residual is y[0] = z[0], y[1] = z[1], y[r>=2] = z[r] - z[r-1], so
    # z[r>=1] = sum_{k=1..r} y[k] and x = per-column prefix sum of z.
    c = np.cumsum(mat, axis=0)
    z = c - mat[0]
    z[0] = mat[0]
    x = np.cumsum(z, axis=0)
    return (x.reshape(-1)[:n]) & 0xFF


def fast_forward_transform(
    data: bytes | bytearray | memoryview,
    max_stride: int = 100,
    chunk_size: int = DEFAULT_CHUNK,
) -> bytes:
    """Vectorized forward transform (same length as input)."""
    if chunk_size < 4:
        raise ValueError(f"chunk_size must be >= 4, got {chunk_size}")
    if max_stride < 1:
        raise ValueError(f"max_stride must be >= 1, got {max_stride}")
    x = np.frombuffer(bytes(data), dtype=np.uint8)
    out = np.empty_like(x)
    prev: np.ndarray | None = None
    for off in range(0, x.shape[0], chunk_size):
        chunk = x[off:off + chunk_size].astype(np.int64)
        stride = 0 if prev is None else select_stride(prev, max_stride)
        if stride == 0:
            out[off:off + chunk.shape[0]] = chunk
        else:
            out[off:off + chunk.shape[0]] = _second_diff(chunk, stride)
        prev = x[off:off + chunk_size]
    return out.tobytes()


def fast_inverse_transform(
    data: bytes | bytearray | memoryview,
    max_stride: int = 100,
    chunk_size: int = DEFAULT_CHUNK,
) -> bytes:
    """Inverse of :func:`fast_forward_transform` (same parameters)."""
    if chunk_size < 4:
        raise ValueError(f"chunk_size must be >= 4, got {chunk_size}")
    if max_stride < 1:
        raise ValueError(f"max_stride must be >= 1, got {max_stride}")
    y = np.frombuffer(bytes(data), dtype=np.uint8)
    out = np.empty_like(y)
    prev: np.ndarray | None = None
    for off in range(0, y.shape[0], chunk_size):
        chunk = y[off:off + chunk_size].astype(np.int64)
        stride = 0 if prev is None else select_stride(prev, max_stride)
        if stride == 0:
            rec = chunk & 0xFF
        else:
            rec = _double_cumsum(chunk, stride)
        out[off:off + chunk.shape[0]] = rec
        # the decoder's next stride choice reads the *reconstructed* chunk
        prev = out[off:off + chunk.shape[0]]
    return out.tobytes()
