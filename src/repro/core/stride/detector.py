"""The adaptive stride detector (§III-A) driving prediction (§III-B).

One detector instance consumes the byte stream one byte at a time through
two calls per position:

* :meth:`StrideDetector.predict` -- before the byte value is known (to
  the decoder), return the predicted value, or ``None`` when no active
  sequence has a long-enough run;
* :meth:`StrideDetector.observe` -- after the (reconstructed) byte value
  is known, update every active stride's sequence table, hit accounting,
  and -- at selection-cycle boundaries -- the active set itself.

The forward and inverse transforms drive an identical detector over the
*same* byte values (the original stream equals the reconstructed stream),
so both sides make identical activation/prediction decisions; this is the
structural argument for losslessness, and mirrors §III-C: "The code for
the inverse transform is almost identical to that for the forward
transform.  Data in the sequence tables is computed from the
reconstructed original stream."

Performance note (HPC guide: profile, then optimize the bottleneck): the
per-byte loop is pure Python but touches only *active* strides; after the
first few selection cycles the active set collapses to the handful of
true periodicities, so steady-state cost is a few list operations per
byte.  The brute-force mode (``adaptive=False``) keeps all
``max_stride`` strides active, reproducing the paper's 4x/17x slowdown
comparison (E5).
"""

from __future__ import annotations

from repro.core.stride.model import StrideConfig, StrideState

__all__ = ["StrideDetector"]


class StrideDetector:
    """Streaming detector over strides ``1..max_stride``."""

    def __init__(self, config: StrideConfig | None = None) -> None:
        self.config = config or StrideConfig()
        cfg = self.config
        # The full set: all strides start active (§III-A: "The active set
        # is initialized to be the full set").
        self._active: dict[int, StrideState] = {
            s: StrideState(s, 0) for s in range(1, cfg.max_stride + 1)
        }
        # Inactive bookkeeping: cycle index when each stride left the
        # active set, and when it last became active (for the
        # once-every-s-cycles eligibility rule).
        self._deactivated_cycle: dict[int, int] = {}
        self._last_selected_cycle: dict[int, int] = {
            s: 0 for s in range(1, cfg.max_stride + 1)
        }
        self._cycle = 0
        # Ring buffer of the last max_stride bytes of the stream.
        self._ring = bytearray(cfg.max_stride)
        self._pos = 0
        # Flat iteration cache over active strides; rebuilding it only
        # when the set changes keeps the per-byte loops free of dict and
        # attribute lookups (this loop is the profiled hot spot).
        self._seq: list[tuple[int, list[int], list[int], StrideState]] = []
        self._rebuild_cache()

    def _rebuild_cache(self) -> None:
        self._seq = [
            (s, st.delta, st.runlen, st) for s, st in self._active.items()
        ]

    # -- prediction (§III-B) --------------------------------------------------

    def predict(self, position: int) -> int | None:
        """Predicted byte value at ``position``, or ``None``.

        "The sequence with the longest run length is found.  If the run
        length is greater than a threshold (currently 2), a prediction is
        made."  Ties break toward the smallest stride (deterministic, and
        shared with the inverse transform).
        """
        threshold = self.config.run_threshold
        best_run = threshold  # must strictly exceed the threshold
        best_stride = 0
        best_pred = None
        ring = self._ring
        cap = len(ring)
        for s, delta, runlen, _st in self._seq:
            if s > position:
                continue
            phi = position % s
            run = runlen[phi]
            if run > best_run or (run == best_run > threshold and s < best_stride):
                best_run = run
                best_stride = s
                best_pred = (ring[(position - s) % cap] + delta[phi]) & 0xFF
        return best_pred

    # -- observation / table update (§III-A) ----------------------------------

    def observe(self, position: int, value: int) -> None:
        """Incorporate the true byte ``value`` at ``position``."""
        ring = self._ring
        cap = len(ring)
        threshold = self.config.run_threshold
        for s, delta, runlen, st in self._seq:
            if s > position:
                continue
            phi = position % s
            d = (value - ring[(position - s) % cap]) & 0xFF
            run = runlen[phi]
            if d == delta[phi]:
                runlen[phi] = run + 1
                if run > threshold:
                    # This sequence predicted prev + delta, correctly.
                    st.attempts += 1
                    st.hits += 1
            else:
                if run > threshold:
                    st.attempts += 1
                delta[phi] = d
                runlen[phi] = 0
        ring[position % cap] = value
        self._pos = position + 1
        if self.config.adaptive and self._pos % self.config.selection_cycle == 0:
            self._end_cycle()

    # -- active-set management (§III-A) ---------------------------------------

    def _end_cycle(self) -> None:
        self._cycle += 1
        cfg = self.config
        # Prune: hit rate below threshold after the 2s-byte settling time.
        for s in list(self._active):
            st = self._active[s]
            if self._pos - st.activated_at < cfg.settle_factor * s:
                continue
            if st.hit_rate() < cfg.hit_rate_threshold:
                del self._active[s]
                self._deactivated_cycle[s] = self._cycle
        # Select one stride to (re)join: "Priority is given to the strides
        # that have been out of the active set the longest: a stride of s
        # is eligible to be selected only once every s selection cycles."
        best = None
        best_out_since = None
        for s, out_cycle in self._deactivated_cycle.items():
            if s in self._active:
                continue
            if self._cycle - self._last_selected_cycle[s] < s:
                continue
            if best_out_since is None or out_cycle < best_out_since or (
                out_cycle == best_out_since and s < best
            ):
                best = s
                best_out_since = out_cycle
        if best is not None:
            self._active[best] = StrideState(best, self._pos)
            self._last_selected_cycle[best] = self._cycle
            del self._deactivated_cycle[best]
        self._rebuild_cache()

    # -- introspection ---------------------------------------------------------

    @property
    def active_strides(self) -> list[int]:
        """Currently active strides, sorted (for tests and reports)."""
        return sorted(self._active)

    def state_of(self, stride: int) -> StrideState | None:
        """The live state for ``stride`` if active, else ``None``."""
        return self._active.get(stride)
