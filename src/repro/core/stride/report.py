"""Sequence analysis for Fig 2: which (stride, phase, delta) runs dominate.

Fig 2 shows an encoded key stream and highlights one detected sequence
(delta=0x0a, s=47, phi=34).  This module scans a byte stream offline
(vectorized, per candidate stride) and reports the strongest linear
sequences so the E2 bench can print the same kind of annotation for our
serialized key streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SequenceReport", "dominant_sequences"]


@dataclass(frozen=True)
class SequenceReport:
    """One detected linear sequence ``x[phi + k*s] = x[phi + (k-1)*s] + delta``."""

    stride: int
    phase: int
    delta: int
    #: longest consecutive run of correct holds
    max_run: int
    #: fraction of positions in this sequence where the relation held
    hold_rate: float


def dominant_sequences(
    data: bytes | bytearray | memoryview,
    max_stride: int = 100,
    top: int = 5,
    min_hold_rate: float = 0.5,
) -> list[SequenceReport]:
    """Strongest linear sequences in ``data``, best first.

    For every stride ``s`` the lag-``s`` differences are computed in one
    vectorized pass; a sequence "holds" at position ``i`` when
    ``d[i] == d[i-s]``.  Sequences are ranked by
    ``(hold_rate, max_run)`` and reported per ``(stride, phase)`` with
    the most frequent delta.
    """
    x = np.frombuffer(bytes(data), dtype=np.uint8).astype(np.int16)
    n = x.shape[0]
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    reports: list[SequenceReport] = []
    for s in range(1, min(max_stride, (n - 1) // 2 if n >= 3 else 0) + 1):
        d = (x[s:] - x[:-s]) & 0xFF  # d[i] corresponds to position i+s
        hold = d[s:] == d[:-s]       # relation holds at position i+2s
        if hold.size == 0:
            continue
        for phi in range(s):
            # positions i = phi + k*s; holds for this phase:
            seq_hold = hold[phi::s]
            if seq_hold.size == 0:
                continue
            rate = float(np.count_nonzero(seq_hold)) / seq_hold.size
            if rate < min_hold_rate:
                continue
            # longest run of True
            padded = np.concatenate(([False], seq_hold, [False]))
            edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
            max_run = int((edges[1::2] - edges[0::2]).max()) if edges.size else 0
            seq_d = d[phi::s]
            values, counts = np.unique(seq_d, return_counts=True)
            delta = int(values[np.argmax(counts)])
            reports.append(
                SequenceReport(
                    stride=s, phase=phi, delta=delta,
                    max_run=max_run, hold_rate=rate,
                )
            )
    reports.sort(key=lambda r: (-r.hold_rate, -r.max_run, r.stride, r.phase))
    return reports[:top]
