"""Fixed stride-set transforms (no adaptation).

§III compares three detection regimes on the Fig 3 dataset:

* a *single user-specified stride* ("a single stride length of 12 yields
  a bzip2 compressed size of 1619 bytes") -- the "most accurate approach
  is to have the user specify lengths";
* *all strides below a maximum* ("701 bytes obtained by using all stride
  lengths less than 100") -- the brute-force exhaustive search, "about 4x
  as slow ... for a maximum stride length of 100 ... 17x slowdown for a
  maximum stride length of 1000";
* the adaptive algorithm of §III-A (which surprisingly beats exhaustive:
  468 vs 701 bytes).

This module provides the first two as thin reconfigurations of the same
detector machinery: a fixed set is simply an adaptive detector whose
active set never changes.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.stride.detector import StrideDetector
from repro.core.stride.model import StrideConfig, StrideState

__all__ = [
    "FixedSetDetector",
    "fixed_forward_transform",
    "fixed_inverse_transform",
]


class FixedSetDetector(StrideDetector):
    """Detector whose active set is pinned to an explicit stride list.

    With ``strides=[12]`` this is the paper's user-specified single
    stride; with ``strides=range(1, 100)`` it is the brute-force
    exhaustive mode.
    """

    def __init__(self, strides: Sequence[int], config: StrideConfig | None = None) -> None:
        strides = sorted(set(int(s) for s in strides))
        if not strides:
            raise ValueError("need at least one stride")
        if strides[0] < 1:
            raise ValueError(f"strides must be >= 1, got {strides[0]}")
        base = config or StrideConfig()
        # Pin the set: disable adaptation, size the ring to the largest stride.
        cfg = StrideConfig(
            max_stride=strides[-1],
            run_threshold=base.run_threshold,
            hit_rate_threshold=base.hit_rate_threshold,
            settle_factor=base.settle_factor,
            selection_cycle=base.selection_cycle,
            adaptive=False,
        )
        super().__init__(cfg)
        self._active = {s: StrideState(s, 0) for s in strides}
        self._rebuild_cache()


def fixed_forward_transform(
    data: bytes | bytearray | memoryview,
    strides: Sequence[int],
    config: StrideConfig | None = None,
) -> bytes:
    """Forward transform with a pinned stride set."""
    det = FixedSetDetector(strides, config)
    out = bytearray(len(data))
    for i, x in enumerate(data):
        pred = det.predict(i)
        out[i] = x if pred is None else (x - pred) & 0xFF
        det.observe(i, x)
    return bytes(out)


def fixed_inverse_transform(
    data: bytes | bytearray | memoryview,
    strides: Sequence[int],
    config: StrideConfig | None = None,
) -> bytes:
    """Inverse of :func:`fixed_forward_transform` (same stride set)."""
    det = FixedSetDetector(strides, config)
    out = bytearray(len(data))
    for i, y in enumerate(data):
        pred = det.predict(i)
        x = y if pred is None else (y + pred) & 0xFF
        out[i] = x
        det.observe(i, x)
    return bytes(out)
