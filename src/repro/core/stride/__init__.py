"""Semantically-informed byte-level compression (paper §III).

A stream of serialized grid keys is "almost identical sequences of bytes"
(Fig 2) -- the few changing bytes advance in linear sequences
``x[phi + k*s] = x[phi + (k-1)*s] + delta``.  The transform predicts each
byte from the byte one stride back plus the tracked delta and emits the
prediction error; a generic compressor (gzip/bzip2) then sees long zero
runs instead of shifting literals.

Modules:

* :mod:`~repro.core.stride.model` -- configuration and sequence tables;
* :mod:`~repro.core.stride.detector` -- the adaptive active-set detector
  (§III-A: selection cycles, 5/6 hit-rate pruning, 2s settling);
* :mod:`~repro.core.stride.transform` -- exact streaming forward/inverse
  transforms (§III-B/C), byte-for-byte the paper's algorithm;
* :mod:`~repro.core.stride.fixed` -- fixed-stride-set variants, including
  the brute-force all-strides mode the paper compares against;
* :mod:`~repro.core.stride.fast` -- a vectorized block-predictor variant
  (our scalable engineering addition; ablation A5 quantifies the gap);
* :mod:`~repro.core.stride.report` -- sequence analysis used to
  regenerate Fig 2;
* :mod:`~repro.core.stride.codec` -- the pluggable codecs (§III-E).
"""

from repro.core.stride.model import StrideConfig
from repro.core.stride.transform import forward_transform, inverse_transform
from repro.core.stride.fixed import (
    fixed_forward_transform,
    fixed_inverse_transform,
)
from repro.core.stride.fast import fast_forward_transform, fast_inverse_transform
from repro.core.stride.report import SequenceReport, dominant_sequences
from repro.core.stride.metadata import StrideAdvice, advise_strides, record_pitch

__all__ = [
    "StrideAdvice",
    "advise_strides",
    "record_pitch",
    "StrideConfig",
    "forward_transform",
    "inverse_transform",
    "fixed_forward_transform",
    "fixed_inverse_transform",
    "fast_forward_transform",
    "fast_inverse_transform",
    "SequenceReport",
    "dominant_sequences",
]
