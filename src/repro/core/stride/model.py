"""Configuration and per-stride sequence state for the §III transform.

A *sequence* is identified by ``(stride s, phase phi)`` with a tracked
difference ``delta`` and a *run length* -- "the number of times in a row
that the sequence has predicted the correct value" (§III-A).  Because a
byte offset ``i`` belongs to exactly one sequence per stride (the one
with ``phi = i mod s``), a stride's whole table is two dense arrays of
length ``s`` indexed by phase.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StrideConfig", "StrideState"]


@dataclass(frozen=True)
class StrideConfig:
    """Knobs of §III-A, defaults set to the paper's stated values."""

    #: largest stride in the full set ("every stride less than the
    #: configured maximum"); the paper evaluates 100 and 1000
    max_stride: int = 100
    #: predict only when run length is *greater than* this ("currently 2")
    run_threshold: int = 2
    #: prune an active stride whose hit rate falls below this
    #: ("currently 5/6 in the code")
    hit_rate_threshold: float = 5.0 / 6.0
    #: a stride must be active for settle_factor*s bytes before it can be
    #: pruned ("it has been active for at least 2s bytes")
    settle_factor: int = 2
    #: bytes per selection cycle ("Every 256 bytes ... a stride is chosen
    #: to be added to the active set")
    selection_cycle: int = 256
    #: False = brute force: the full set stays active forever (§III's
    #: "initially, we attempted to detect linear sequences of almost any
    #: length at every location")
    adaptive: bool = True

    def __post_init__(self) -> None:
        if self.max_stride < 1:
            raise ValueError(f"max_stride must be >= 1, got {self.max_stride}")
        if self.run_threshold < 0:
            raise ValueError(f"run_threshold must be >= 0, got {self.run_threshold}")
        if not 0.0 < self.hit_rate_threshold <= 1.0:
            raise ValueError(
                f"hit_rate_threshold must be in (0, 1], got {self.hit_rate_threshold}"
            )
        if self.settle_factor < 1:
            raise ValueError(f"settle_factor must be >= 1, got {self.settle_factor}")
        if self.selection_cycle < 1:
            raise ValueError(
                f"selection_cycle must be >= 1, got {self.selection_cycle}"
            )


class StrideState:
    """Sequence table and hit accounting for one active stride."""

    __slots__ = ("stride", "delta", "runlen", "attempts", "hits", "activated_at")

    def __init__(self, stride: int, position: int) -> None:
        self.stride = stride
        self.delta = [0] * stride     # tracked delta per phase
        self.runlen = [0] * stride    # consecutive holds per phase
        self.attempts = 0             # predictions this activation
        self.hits = 0                 # correct predictions this activation
        self.activated_at = position  # byte offset of (re)activation

    def hit_rate(self) -> float:
        """Fraction of correct predictions; 0 if it never predicted.

        The paper leaves the zero-attempt case unspecified; we treat a
        stride that cannot settle any run as maximally bad so it gets
        pruned rather than lingering in the active set.
        """
        if self.attempts == 0:
            return 0.0
        return self.hits / self.attempts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StrideState(s={self.stride}, attempts={self.attempts}, "
            f"hits={self.hits})"
        )
