"""Exact streaming stride transform, forward (§III-B) and inverse (§III-C).

Forward: ``y_i = x_i - x_{i-s} - delta`` when a prediction is made, else
``y_i = x_i`` (paper equations (2)/(3), all arithmetic mod 256).

Inverse: ``x_i = y_i + x_{i-s} + delta`` when a prediction is made, else
``x_i = y_i`` (equation (4)), with the sequence tables "computed from the
reconstructed original stream" -- both directions drive byte-identical
:class:`~repro.core.stride.detector.StrideDetector` instances, so the
transform is lossless by construction for any input.

The transform has constant-sized in-memory state and never looks ahead or
behind beyond ``max_stride`` bytes, so -- as Fig 4 verifies -- its running
time is linear in the input size and it streams arbitrarily large files.
"""

from __future__ import annotations

from repro.core.stride.detector import StrideDetector
from repro.core.stride.model import StrideConfig

__all__ = ["forward_transform", "inverse_transform"]


def forward_transform(
    data: bytes | bytearray | memoryview,
    config: StrideConfig | None = None,
) -> bytes:
    """Transform ``data`` into a prediction-residual stream (same length)."""
    det = StrideDetector(config)
    predict = det.predict
    observe = det.observe
    out = bytearray(len(data))
    for i, x in enumerate(data):
        pred = predict(i)
        out[i] = x if pred is None else (x - pred) & 0xFF
        observe(i, x)
    return bytes(out)


def inverse_transform(
    data: bytes | bytearray | memoryview,
    config: StrideConfig | None = None,
) -> bytes:
    """Reconstruct the original stream from a residual stream."""
    det = StrideDetector(config)
    predict = det.predict
    observe = det.observe
    out = bytearray(len(data))
    for i, y in enumerate(data):
        pred = predict(i)
        x = y if pred is None else (y + pred) & 0xFF
        out[i] = x
        observe(i, x)
    return bytes(out)
