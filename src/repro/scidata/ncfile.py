"""A minimal NetCDF-like on-disk container for datasets.

The paper's inputs are NetCDF files; SciHadoop's input format reads
slabs of named variables from them without loading whole arrays.  This
module provides that capability for our datasets with a deliberately
simple format:

* header: magic ``b"RNC1"``, then a JSON document describing each
  variable (name, dtype, shape, origin, attrs, byte offset);
* body: each variable's raw C-order little-endian array at its offset,
  64-byte aligned.

Reads are lazy: :func:`open_dataset` memory-maps the body, so a slab
read touches only the pages the slab covers -- the access pattern the
array splitter induces on real scientific inputs.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.scidata.dataset import Dataset, Variable

__all__ = ["save_dataset", "open_dataset", "MAGIC"]

MAGIC = b"RNC1"
_ALIGN = 64


def save_dataset(dataset: Dataset, path: str | os.PathLike) -> int:
    """Write ``dataset`` to ``path``; returns total bytes written."""
    entries = []
    offset = 0  # relative to body start; fixed up after header sizing
    payloads: list[np.ndarray] = []
    for name in dataset.names:
        var = dataset[name]
        data = np.ascontiguousarray(var.data)
        data = data.astype(data.dtype.newbyteorder("<"))
        entries.append({
            "name": var.name,
            "dtype": data.dtype.str,
            "shape": list(data.shape),
            "origin": list(var.origin),
            "attrs": {k: v for k, v in var.attrs.items()
                      if isinstance(v, (str, int, float, bool))},
            "offset": offset,
        })
        payloads.append(data)
        offset += -(-data.nbytes // _ALIGN) * _ALIGN
    header = json.dumps({"variables": entries}).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(len(header).to_bytes(8, "little"))
        fh.write(header)
        body_start = fh.tell()
        pad = -body_start % _ALIGN
        fh.write(b"\x00" * pad)
        body_start += pad
        for entry, data in zip(entries, payloads):
            fh.seek(body_start + entry["offset"])
            fh.write(data.tobytes())
        # pad the final variable to its aligned slot size
        end = body_start + offset
        fh.seek(end - 1)
        fh.write(b"\x00")
        return end


def open_dataset(path: str | os.PathLike) -> Dataset:
    """Open a saved dataset with memory-mapped (lazy) variable data."""
    with open(path, "rb") as fh:
        magic = fh.read(4)
        if magic != MAGIC:
            raise ValueError(f"{path!r} is not a {MAGIC!r} container")
        header_len = int.from_bytes(fh.read(8), "little")
        header = json.loads(fh.read(header_len).decode("utf-8"))
        body_start = fh.tell()
        body_start += -body_start % _ALIGN
    ds = Dataset()
    for entry in header["variables"]:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        data = np.memmap(path, dtype=dtype, mode="r",
                         offset=body_start + entry["offset"], shape=shape)
        ds.add(Variable(
            entry["name"], data,
            origin=tuple(entry["origin"]),
            attrs=entry.get("attrs", {}),
        ))
    return ds
