"""Deterministic synthetic workload generators.

The paper's datasets (a 3-D ``windspeed1`` float field; integer grids for
the sliding-median query; raw int32 coordinate triples for the byte-level
compression table) are unavailable, so we synthesize equivalents.  What
matters for every experiment is the *key structure* -- serialized grid
coordinates walked in a regular pattern -- which these generators
reproduce exactly; value entropy only affects how well the value portion
compresses, so generators expose a ``smooth`` knob covering both the
correlated-field and random-field regimes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.scidata.dataset import Dataset, Variable
from repro.util.rng import make_rng

__all__ = ["windspeed_field", "integer_grid", "walk_grid_int32_triples"]


def windspeed_field(
    shape: Sequence[int] = (100, 100, 100),
    name: str = "windspeed1",
    seed: int | None = None,
    smooth: bool = True,
) -> Dataset:
    """A float32 field like the paper's ``windspeed1`` (intro, Fig 2).

    ``smooth=True`` builds a sum of low-frequency sinusoids plus small
    noise (plausible simulation output); ``smooth=False`` is uniform
    noise (adversarial for value compression).
    """
    shape = tuple(int(s) for s in shape)
    if any(s <= 0 for s in shape):
        raise ValueError(f"shape must be positive, got {shape}")
    rng = make_rng(seed)
    if smooth:
        axes = [np.linspace(0.0, 2.0 * np.pi, s, dtype=np.float32) for s in shape]
        grids = np.meshgrid(*axes, indexing="ij")
        field = np.zeros(shape, dtype=np.float32)
        for k, g in enumerate(grids):
            field += np.sin((k + 1) * g).astype(np.float32)
        field += rng.normal(0.0, 0.05, size=shape).astype(np.float32)
        field = (field * 10.0 + 20.0).astype(np.float32)  # wind-speed-ish m/s
    else:
        field = rng.uniform(0.0, 40.0, size=shape).astype(np.float32)
    ds = Dataset()
    ds.add(Variable(name, field, attrs={"units": "m/s", "synthetic": True}))
    return ds


def integer_grid(
    shape: Sequence[int],
    name: str = "values",
    seed: int | None = None,
    low: int = 0,
    high: int = 1 << 20,
) -> Dataset:
    """An int32 grid like the sliding-median inputs (§III-E, §IV-D, Fig 8)."""
    shape = tuple(int(s) for s in shape)
    if any(s <= 0 for s in shape):
        raise ValueError(f"shape must be positive, got {shape}")
    if high <= low:
        raise ValueError(f"need high > low, got [{low}, {high})")
    rng = make_rng(seed)
    data = rng.integers(low, high, size=shape, dtype=np.int32)
    ds = Dataset()
    ds.add(Variable(name, data, attrs={"synthetic": True}))
    return ds


def walk_grid_int32_triples(side: int) -> bytes:
    """The Fig 3 input: raw int32 coordinate triples from walking a cube.

    "The input was a raw stream of triples of 32-bit integers, taken by
    walking a grid" -- a ``side**3``-cell cube walked in C order, little
    endian, 12 bytes per point.  ``side=100`` reproduces the paper's
    12,000,000-byte file.
    """
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    ax = np.arange(side, dtype=np.int32)
    i, j, k = np.meshgrid(ax, ax, ax, indexing="ij")
    triples = np.stack([i.ravel(), j.ravel(), k.ravel()], axis=1)
    return triples.astype("<i4").tobytes()
