"""SciHadoop-style array input splits.

Hadoop splits inputs by byte ranges; SciHadoop splits by *slabs* of the
logical array so each map task receives a contiguous sub-grid.  The split
geometry matters to the paper: "Partitioning the data set across Map tasks
results in less aggregation" (§IV-D), because keys from different mappers
can never aggregate with each other and halo cells (for sliding-window
queries) overlap between neighbouring splits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scidata.dataset import Dataset
from repro.scidata.slab import Slab

__all__ = ["InputSplit", "ArraySplitter"]


@dataclass(frozen=True)
class InputSplit:
    """One map task's share of the input: a variable name plus a slab."""

    variable: str
    slab: Slab
    split_id: int

    @property
    def cells(self) -> int:
        return self.slab.size


class ArraySplitter:
    """Partition every variable of a dataset into per-mapper slabs.

    Parameters
    ----------
    target_splits:
        Desired number of splits per variable.  The splitter factors this
        into per-dimension chunk counts, biased toward cutting the
        *leading* dimensions (keeping rows contiguous, as SciHadoop does to
        preserve on-disk locality).
    """

    def __init__(self, target_splits: int) -> None:
        if target_splits < 1:
            raise ValueError(f"target_splits must be >= 1, got {target_splits}")
        self.target_splits = target_splits

    def _chunk_counts(self, shape: tuple[int, ...]) -> list[int]:
        """Factor target_splits into per-dimension cuts, leading dims first."""
        remaining = self.target_splits
        counts = [1] * len(shape)
        for d in range(len(shape)):
            if remaining == 1:
                break
            take = min(remaining, shape[d])
            counts[d] = take
            remaining = -(-remaining // take)  # ceil division
        return counts

    def split(self, dataset: Dataset,
              variables: list[str] | None = None) -> list[InputSplit]:
        """Splits for the requested variables (default: all), ids dense.

        Restricting the variable set matters for multi-variable
        datasets: a query over one variable must not receive the other
        variables' slabs as input splits.
        """
        names = dataset.names if variables is None else list(variables)
        for name in names:
            if name not in dataset:
                raise KeyError(f"dataset has no variable {name!r}")
        splits: list[InputSplit] = []
        sid = 0
        for name in names:
            var = dataset[name]
            counts = self._chunk_counts(var.data.shape)
            for slab in var.extent.grid_partition(counts):
                splits.append(InputSplit(variable=name, slab=slab, split_id=sid))
                sid += 1
        return splits
