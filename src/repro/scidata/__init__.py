"""Scientific-data substrate (SciHadoop's array data model).

SciHadoop processes "array-based" inputs: named variables laid out on
regular n-D grids, addressed by *slabs* (corner + shape), and partitioned
across mappers by slab rather than by byte offset.  The paper's
experiments all run over such grids (a 3-D ``windspeed1`` field, integer
grids for the sliding-median query), so this package provides:

* :class:`~repro.scidata.slab.Slab` -- corner+shape boxes with the algebra
  (intersection, containment, iteration, splitting) the aggregation and
  query layers need;
* :class:`~repro.scidata.dataset.Dataset` / ``Variable`` -- an in-memory
  NetCDF-like container standing in for the paper's NetCDF inputs;
* :mod:`~repro.scidata.generator` -- deterministic synthetic fields;
* :class:`~repro.scidata.splits.ArraySplitter` -- SciHadoop-style input
  splits (one slab per map task).
"""

from repro.scidata.slab import Slab
from repro.scidata.dataset import Dataset, Variable
from repro.scidata.generator import (
    integer_grid,
    windspeed_field,
    walk_grid_int32_triples,
)
from repro.scidata.splits import ArraySplitter, InputSplit
from repro.scidata.ncfile import open_dataset, save_dataset

__all__ = [
    "Slab",
    "Dataset",
    "Variable",
    "integer_grid",
    "windspeed_field",
    "walk_grid_int32_triples",
    "ArraySplitter",
    "InputSplit",
    "save_dataset",
    "open_dataset",
]
