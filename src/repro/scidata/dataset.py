"""In-memory NetCDF-like datasets.

The paper's inputs are NetCDF files of gridded variables; we stand in a
minimal but faithful model: a :class:`Dataset` maps variable names to
:class:`Variable` objects, each an n-D numpy array anchored at a global
grid origin, with free-form attributes.  Reads are slab-addressed, which
is all SciHadoop's input path uses.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.scidata.slab import Slab

__all__ = ["Variable", "Dataset"]


class Variable:
    """A named n-D gridded variable.

    Parameters
    ----------
    name:
        Variable name (e.g. ``"windspeed1"``); becomes part of every
        per-cell intermediate key, which is precisely the waste the paper
        attacks.
    data:
        The grid values.
    origin:
        Global coordinate of ``data[0, 0, ...]``; defaults to all zeros.
    attrs:
        Free-form metadata (units etc.), carried for API completeness.
    """

    def __init__(
        self,
        name: str,
        data: np.ndarray,
        origin: tuple[int, ...] | None = None,
        attrs: Mapping[str, object] | None = None,
    ) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        data = np.asarray(data)
        if data.ndim < 1:
            raise ValueError("variable data must have at least one dimension")
        self.name = name
        self.data = data
        self.origin = tuple(origin) if origin is not None else (0,) * data.ndim
        if len(self.origin) != data.ndim:
            raise ValueError(
                f"origin rank {len(self.origin)} != data rank {data.ndim}"
            )
        self.attrs: dict[str, object] = dict(attrs or {})

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def extent(self) -> Slab:
        """The slab of global coordinates this variable covers."""
        return Slab(self.origin, self.data.shape)

    def read(self, slab: Slab) -> np.ndarray:
        """Read the values inside ``slab`` (global coordinates).

        Raises :class:`ValueError` if the slab is not fully inside the
        variable's extent -- SciHadoop validates query extents up front.
        """
        if not self.extent.contains(slab):
            raise ValueError(f"{slab} not contained in variable extent {self.extent}")
        idx = tuple(
            slice(c - o, c - o + s)
            for c, s, o in zip(slab.corner, slab.shape, self.origin)
        )
        return self.data[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r}, shape={self.data.shape}, dtype={self.dtype})"


class Dataset:
    """A collection of named variables, the unit a job takes as input."""

    def __init__(self, variables: Mapping[str, Variable] | None = None) -> None:
        self._variables: dict[str, Variable] = {}
        for var in (variables or {}).values():
            self.add(var)

    def add(self, variable: Variable) -> None:
        if variable.name in self._variables:
            raise ValueError(f"duplicate variable {variable.name!r}")
        self._variables[variable.name] = variable

    def __getitem__(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise KeyError(
                f"no variable {name!r}; have {sorted(self._variables)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._variables

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._variables.values())

    def __len__(self) -> int:
        return len(self._variables)

    @property
    def names(self) -> list[str]:
        return sorted(self._variables)

    def total_cells(self) -> int:
        return sum(v.data.size for v in self)

    def total_value_bytes(self) -> int:
        """Size of all raw values -- the paper's 'data is N bytes' figure."""
        return sum(v.data.nbytes for v in self)
