"""Axis-aligned hyper-rectangles ("slabs") with corner+shape addressing.

The paper's central observation is that a regular grid "can be described
in small, constant size" as a ``(corner, size)`` pair; slabs are that
description.  They appear everywhere in the system: input splits, the
sliding-window halo a mapper emits into, alignment boxes in §IV-C, and the
cells covered by an aggregate key.

Coordinates may be negative: the sliding-median example in §IV-C has
mappers emitting into ``(-1,-1)-(10,10)`` for an input block of
``(0,0)-(9,9)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Slab"]


@dataclass(frozen=True)
class Slab:
    """An n-D box: ``corner[d] <= x[d] < corner[d] + shape[d]``."""

    corner: tuple[int, ...]
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        corner = tuple(int(c) for c in self.corner)
        shape = tuple(int(s) for s in self.shape)
        object.__setattr__(self, "corner", corner)
        object.__setattr__(self, "shape", shape)
        if len(corner) != len(shape):
            raise ValueError(f"corner {corner} and shape {shape} rank mismatch")
        if not corner:
            raise ValueError("slab must have at least one dimension")
        if any(s < 0 for s in shape):
            raise ValueError(f"shape must be non-negative, got {shape}")

    # -- basic geometry -----------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.corner)

    @property
    def size(self) -> int:
        """Number of cells (0 if any extent is 0)."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def end(self) -> tuple[int, ...]:
        """Exclusive upper corner."""
        return tuple(c + s for c, s in zip(self.corner, self.shape))

    def is_empty(self) -> bool:
        return self.size == 0

    def contains_point(self, point: Sequence[int]) -> bool:
        if len(point) != self.ndim:
            raise ValueError(f"point rank {len(point)} != slab rank {self.ndim}")
        return all(c <= p < c + s for p, c, s in zip(point, self.corner, self.shape))

    def contains(self, other: "Slab") -> bool:
        """True if ``other`` lies entirely inside this slab."""
        self._check_rank(other)
        if other.is_empty():
            return True
        return all(
            sc <= oc and oc + osz <= sc + ssz
            for sc, ssz, oc, osz in zip(self.corner, self.shape, other.corner, other.shape)
        )

    def intersect(self, other: "Slab") -> "Slab | None":
        """The overlapping slab, or ``None`` if disjoint/empty."""
        self._check_rank(other)
        corner = []
        shape = []
        for sc, ssz, oc, osz in zip(self.corner, self.shape, other.corner, other.shape):
            lo = max(sc, oc)
            hi = min(sc + ssz, oc + osz)
            if hi <= lo:
                return None
            corner.append(lo)
            shape.append(hi - lo)
        return Slab(tuple(corner), tuple(shape))

    def expand(self, halo: int | Sequence[int]) -> "Slab":
        """Grow by ``halo`` cells on every side (per-dimension if a sequence).

        This is the "mapper taking input for (0,0)-(9,9) produces output in
        (-1,-1)-(10,10)" operation from §IV-C.
        """
        halos = [halo] * self.ndim if isinstance(halo, int) else list(halo)
        if len(halos) != self.ndim:
            raise ValueError(f"halo rank {len(halos)} != slab rank {self.ndim}")
        if any(h < 0 for h in halos):
            raise ValueError(f"halo must be non-negative, got {halos}")
        return Slab(
            tuple(c - h for c, h in zip(self.corner, halos)),
            tuple(s + 2 * h for s, h in zip(self.shape, halos)),
        )

    def clip(self, bounds: "Slab") -> "Slab | None":
        """Alias for intersection, reading as 'restrict to bounds'."""
        return self.intersect(bounds)

    # -- iteration / conversion ---------------------------------------------

    def coords(self) -> np.ndarray:
        """All cell coordinates as an ``(size, ndim)`` int64 array, C order."""
        if self.is_empty():
            return np.zeros((0, self.ndim), dtype=np.int64)
        axes = [np.arange(c, c + s, dtype=np.int64) for c, s in zip(self.corner, self.shape)]
        grids = np.meshgrid(*axes, indexing="ij")
        return np.stack([g.ravel() for g in grids], axis=1)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        """Iterate cell coordinates in C order (last dim fastest)."""
        for row in self.coords():
            yield tuple(int(v) for v in row)

    def local_index(self, point: Sequence[int]) -> int:
        """Row-major offset of ``point`` within this slab."""
        if not self.contains_point(point):
            raise ValueError(f"{tuple(point)} not inside {self}")
        idx = 0
        for p, c, s in zip(point, self.corner, self.shape):
            idx = idx * s + (p - c)
        return idx

    # -- splitting ------------------------------------------------------------

    def split(self, dim: int, at: int) -> tuple["Slab", "Slab"]:
        """Cut along ``dim`` at absolute coordinate ``at`` (goes to the right half)."""
        if not 0 <= dim < self.ndim:
            raise ValueError(f"dim {dim} out of range for rank {self.ndim}")
        lo, hi = self.corner[dim], self.corner[dim] + self.shape[dim]
        if not lo < at < hi:
            raise ValueError(f"cut {at} outside open interval ({lo}, {hi})")
        left_shape = list(self.shape)
        left_shape[dim] = at - lo
        right_corner = list(self.corner)
        right_corner[dim] = at
        right_shape = list(self.shape)
        right_shape[dim] = hi - at
        return (
            Slab(self.corner, tuple(left_shape)),
            Slab(tuple(right_corner), tuple(right_shape)),
        )

    def grid_partition(self, chunks: Sequence[int]) -> list["Slab"]:
        """Partition into an axis-aligned grid of roughly equal sub-slabs.

        ``chunks[d]`` pieces along dimension ``d``; earlier pieces take the
        remainder cells, matching how SciHadoop balances array splits.
        """
        if len(chunks) != self.ndim:
            raise ValueError(f"chunks rank {len(chunks)} != slab rank {self.ndim}")
        if any(c < 1 for c in chunks):
            raise ValueError(f"chunk counts must be >= 1, got {chunks}")
        if any(c > s for c, s in zip(chunks, self.shape)):
            raise ValueError(f"cannot cut {self.shape} into {tuple(chunks)} pieces")
        per_dim: list[list[tuple[int, int]]] = []
        for d, nchunks in enumerate(chunks):
            extent = self.shape[d]
            base, rem = divmod(extent, nchunks)
            pieces = []
            start = self.corner[d]
            for i in range(nchunks):
                length = base + (1 if i < rem else 0)
                pieces.append((start, length))
                start += length
            per_dim.append(pieces)
        out: list[Slab] = []
        idx = [0] * self.ndim
        while True:
            corner = tuple(per_dim[d][idx[d]][0] for d in range(self.ndim))
            shape = tuple(per_dim[d][idx[d]][1] for d in range(self.ndim))
            out.append(Slab(corner, shape))
            d = self.ndim - 1
            while d >= 0:
                idx[d] += 1
                if idx[d] < chunks[d]:
                    break
                idx[d] = 0
                d -= 1
            if d < 0:
                return out

    def _check_rank(self, other: "Slab") -> None:
        if other.ndim != self.ndim:
            raise ValueError(f"rank mismatch: {self.ndim} vs {other.ndim}")

    def __repr__(self) -> str:
        lo = ",".join(str(c) for c in self.corner)
        hi = ",".join(str(e - 1) for e in self.end)
        return f"Slab(({lo})-({hi}))"
