"""Curve interface and registry.

A :class:`Curve` maps n-dimensional non-negative integer coordinates to a
single linear index and back.  All implementations are *vectorized*:
``encode`` takes an ``(npoints, ndim)`` array and returns ``(npoints,)``
indices, so mapping a mapper's whole output buffer costs a handful of
numpy passes rather than a Python loop per cell (the aggregation buffer in
§IV-A flushes tens of thousands of cells at a time).

Curves are registered by name so job configurations can select them with a
string (``job.curve = "zorder"``), mirroring how Hadoop selects pluggable
components by class name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = ["Curve", "register_curve", "get_curve", "available_curves"]


class Curve(ABC):
    """Bijection between an n-D grid ``[0, 2**bits)**ndim`` and indices.

    Parameters
    ----------
    ndim:
        Number of grid dimensions (>= 1).
    bits:
        Bits per dimension.  The curve covers ``2**(ndim*bits)`` cells;
        coordinates must lie in ``[0, 2**bits)``.
    """

    #: registry name, set by subclasses
    name: str = "abstract"

    def __init__(self, ndim: int, bits: int) -> None:
        if ndim < 1:
            raise ValueError(f"ndim must be >= 1, got {ndim}")
        if not 1 <= bits <= 21:
            # 3 dims x 21 bits = 63 bits: keeps indices inside int64.
            raise ValueError(f"bits must be in [1, 21], got {bits}")
        if ndim * bits > 63:
            raise ValueError(
                f"ndim*bits must fit in a signed 64-bit index, got {ndim}*{bits}"
            )
        self.ndim = ndim
        self.bits = bits

    @property
    def size(self) -> int:
        """Total number of cells covered by the curve."""
        return 1 << (self.ndim * self.bits)

    @property
    def side(self) -> int:
        """Extent of the curve along each dimension."""
        return 1 << self.bits

    # -- required implementation hooks ------------------------------------

    @abstractmethod
    def encode(self, coords: np.ndarray) -> np.ndarray:
        """Map ``(npoints, ndim)`` uint coordinates to ``(npoints,)`` indices."""

    @abstractmethod
    def decode(self, indices: np.ndarray) -> np.ndarray:
        """Map ``(npoints,)`` indices back to ``(npoints, ndim)`` coordinates."""

    # -- shared helpers -----------------------------------------------------

    def _check_coords(self, coords: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim == 1:
            coords = coords.reshape(1, -1)
        if coords.ndim != 2 or coords.shape[1] != self.ndim:
            raise ValueError(
                f"expected (npoints, {self.ndim}) coordinates, got shape {coords.shape}"
            )
        if coords.size and (coords.min() < 0 or coords.max() >= self.side):
            raise ValueError(
                f"coordinates out of range [0, {self.side}) for {self.bits}-bit curve"
            )
        return coords

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim == 0:
            indices = indices.reshape(1)
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise ValueError(f"indices out of range [0, {self.size})")
        return indices

    def encode_point(self, coord: Sequence[int]) -> int:
        """Scalar convenience wrapper around :meth:`encode`."""
        return int(self.encode(np.asarray([coord], dtype=np.int64))[0])

    def decode_point(self, index: int) -> tuple[int, ...]:
        """Scalar convenience wrapper around :meth:`decode`."""
        return tuple(int(v) for v in self.decode(np.asarray([index]))[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(ndim={self.ndim}, bits={self.bits})"


_REGISTRY: dict[str, type[Curve]] = {}


def register_curve(cls: type[Curve]) -> type[Curve]:
    """Class decorator adding a curve implementation to the registry."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"{cls.__name__} must define a registry name")
    _REGISTRY[cls.name] = cls
    return cls


def get_curve(name: str, ndim: int, bits: int) -> Curve:
    """Instantiate a registered curve by name.

    Raises :class:`KeyError` listing the available names if unknown.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown curve {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(ndim, bits)


def available_curves() -> list[str]:
    """Names of all registered curve implementations."""
    return sorted(_REGISTRY)
