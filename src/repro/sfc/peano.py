"""Peano curve (base-3), the paper's third curve candidate.

§IV-A: "Other curves, such as the Hilbert curve or Peano curve could be
used."  The Peano curve is the original (1890) space-filling curve; like
Hilbert it is *continuous* -- consecutive indices are grid neighbours --
but it divides each level into 3x3 (not 2x2) blocks traversed in a
serpentine order.

Construction (the standard n-D generalization): coordinates are read as
base-3 digit rows, most significant level first.  Per level, the block
is traversed serpentine-fashion -- dimension 0 slowest, and each later
dimension's digit is reflected (``2 - d``) when the sum of the more
significant digits at that level is odd -- and each dimension carries a
cumulative reflection flag that toggles with the parity of the *other*
dimensions' traversal digits, which is exactly what keeps consecutive
subcells' entry/exit corners glued together.

``bits`` is interpreted as base-3 *levels*: the curve covers
``3**(ndim*bits)`` cells with side ``3**bits`` (the registry signature is
shared with the binary curves; callers sizing a curve to a grid must use
``ceil(log3(side))`` levels).
"""

from __future__ import annotations

import numpy as np

from repro.sfc.base import Curve, register_curve

__all__ = ["PeanoCurve"]


@register_curve
class PeanoCurve(Curve):
    """Peano-order bijection between ``ndim``-D coordinates and indices."""

    name = "peano"

    def __init__(self, ndim: int, bits: int) -> None:
        # base-3 geometry: validate without the binary base class rules
        if ndim < 1:
            raise ValueError(f"ndim must be >= 1, got {ndim}")
        if bits < 1:
            raise ValueError(f"bits (base-3 levels) must be >= 1, got {bits}")
        # 3**(ndim*bits) must fit a signed 64-bit index
        if ndim * bits * np.log2(3.0) > 62:
            raise ValueError(
                f"ndim*levels too large for int64 indices: {ndim}*{bits}"
            )
        self.ndim = ndim
        self.bits = bits

    @property
    def side(self) -> int:
        return 3 ** self.bits

    @property
    def size(self) -> int:
        return 3 ** (self.ndim * self.bits)

    # -- digit helpers ---------------------------------------------------------

    def _coord_digits(self, coords: np.ndarray) -> np.ndarray:
        """Base-3 digits of each coordinate: (npoints, ndim, levels),
        most significant level first."""
        n, nd = coords.shape
        digits = np.empty((n, nd, self.bits), dtype=np.int64)
        work = coords.copy()
        for lvl in range(self.bits - 1, -1, -1):
            digits[:, :, lvl] = work % 3
            work //= 3
        return digits

    # -- encode / decode ---------------------------------------------------------

    def encode(self, coords: np.ndarray) -> np.ndarray:
        coords = self._check_coords(coords)
        if coords.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        n, nd = coords.shape
        digits = self._coord_digits(coords)
        flips = np.zeros((n, nd), dtype=np.int64)  # parity flags per dim
        index = np.zeros(n, dtype=np.int64)
        for lvl in range(self.bits):
            q = digits[:, :, lvl]
            # undo the cumulative per-dimension reflection
            p = np.where(flips & 1, 2 - q, q)
            # undo the serpentine within-level reflection
            t = np.empty_like(p)
            prefix = np.zeros(n, dtype=np.int64)
            for j in range(nd):
                t[:, j] = np.where(prefix & 1, 2 - p[:, j], p[:, j])
                prefix += t[:, j]
            # accumulate index digits, dimension-major
            for j in range(nd):
                index = index * 3 + t[:, j]
            # toggle each dim's flip with the parity of the others' digits
            total = t.sum(axis=1)
            flips += total[:, None] - t
        return index

    def decode(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        if indices.shape[0] == 0:
            return np.zeros((0, self.ndim), dtype=np.int64)
        n = indices.shape[0]
        nd = self.ndim
        # split the index into per-level digit groups, most significant first
        groups = np.empty((n, self.bits, nd), dtype=np.int64)
        work = indices.copy()
        for lvl in range(self.bits - 1, -1, -1):
            for j in range(nd - 1, -1, -1):
                groups[:, lvl, j] = work % 3
                work //= 3
        flips = np.zeros((n, nd), dtype=np.int64)
        coords = np.zeros((n, nd), dtype=np.int64)
        for lvl in range(self.bits):
            t = groups[:, lvl, :]
            # apply the serpentine within-level reflection
            p = np.empty_like(t)
            prefix = np.zeros(n, dtype=np.int64)
            for j in range(nd):
                p[:, j] = np.where(prefix & 1, 2 - t[:, j], t[:, j])
                prefix += t[:, j]
            # apply the cumulative per-dimension reflection
            q = np.where(flips & 1, 2 - p, p)
            coords = coords * 3 + q
            total = t.sum(axis=1)
            flips += total[:, None] - t
        return coords
