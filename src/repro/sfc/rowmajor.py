"""Row-major (C-order) linearization.

Not a locality-preserving curve at all -- it is how the raw array is laid
out on disk, and is the implicit ordering a naive per-cell key scheme
produces.  Included as the baseline for the A1 clustering ablation: for a
box query spanning ``k`` rows, row-major yields one range per row while
Z-order/Hilbert yield far fewer once the box aligns with curve blocks.
"""

from __future__ import annotations

import numpy as np

from repro.sfc.base import Curve, register_curve

__all__ = ["RowMajorCurve"]


@register_curve
class RowMajorCurve(Curve):
    """C-order index: last dimension varies fastest."""

    name = "rowmajor"

    def encode(self, coords: np.ndarray) -> np.ndarray:
        coords = self._check_coords(coords)
        out = np.zeros(coords.shape[0], dtype=np.int64)
        for dim in range(self.ndim):
            out = (out << self.bits) | coords[:, dim]
        return out

    def decode(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        coords = np.zeros((indices.shape[0], self.ndim), dtype=np.int64)
        mask = self.side - 1
        work = indices.copy()
        for dim in range(self.ndim - 1, -1, -1):
            coords[:, dim] = work & mask
            work >>= self.bits
        return coords
