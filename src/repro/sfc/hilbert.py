"""Hilbert curve via Skilling's transpose algorithm.

The paper notes (§IV-A, citing Moon et al.) that the Hilbert curve has
better clustering than Z-order -- fewer contiguous runs per query box and
therefore fewer aggregate keys -- "but the Hilbert curve has more
overhead".  We implement it so ablation A1 can quantify that trade-off.

The implementation is John Skilling's 2004 algorithm ("Programming the
Hilbert curve", AIP Conf. Proc. 707), which converts between axes and the
"transposed" Hilbert integer with ``O(bits * ndim)`` bit operations.  We
vectorize it over points: every conditional in Skilling's scalar code
becomes a boolean-mask select, so the per-point cost matches Z-order up to
a constant (the "more overhead" the paper mentions).
"""

from __future__ import annotations

import numpy as np

from repro.sfc.base import Curve, register_curve

__all__ = ["HilbertCurve"]


@register_curve
class HilbertCurve(Curve):
    """Hilbert-order bijection between ``ndim``-D coordinates and indices."""

    name = "hilbert"

    # -- transposed-form packing ------------------------------------------

    def _pack(self, x: np.ndarray) -> np.ndarray:
        """Interleave transposed columns ``x`` (npoints, ndim) into indices.

        In Skilling's transposed form, bit ``q`` (counting from the MSB) of
        every axis forms one ``ndim``-bit group of the Hilbert integer,
        with axis 0 contributing the most significant bit of the group.
        """
        n, b = self.ndim, self.bits
        out = np.zeros(x.shape[0], dtype=np.int64)
        for bit in range(b):
            for dim in range(n):
                src = (x[:, dim] >> bit) & 1
                out |= src << (bit * n + (n - 1 - dim))
        return out

    def _unpack(self, indices: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_pack`."""
        n, b = self.ndim, self.bits
        x = np.zeros((indices.shape[0], n), dtype=np.int64)
        for bit in range(b):
            for dim in range(n):
                src = (indices >> (bit * n + (n - 1 - dim))) & 1
                x[:, dim] |= src << bit
        return x

    # -- Skilling transforms ------------------------------------------------

    def encode(self, coords: np.ndarray) -> np.ndarray:
        coords = self._check_coords(coords)
        if coords.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        x = coords.copy()
        n, b = self.ndim, self.bits
        m = 1 << (b - 1)

        # Inverse undo excess work (AxesToTranspose, Skilling 2004).
        q = m
        while q > 1:
            p = q - 1
            for i in range(n):
                hit = (x[:, i] & q) != 0
                # if bit set: invert low bits of x[0]
                x[:, 0] ^= np.where(hit, p, 0)
                # else: swap low bits of x[0] and x[i]
                t = np.where(hit, 0, (x[:, 0] ^ x[:, i]) & p)
                x[:, 0] ^= t
                x[:, i] ^= t
            q >>= 1

        # Gray encode.
        for i in range(1, n):
            x[:, i] ^= x[:, i - 1]
        t = np.zeros(x.shape[0], dtype=np.int64)
        q = m
        while q > 1:
            hit = (x[:, n - 1] & q) != 0
            t ^= np.where(hit, q - 1, 0)
            q >>= 1
        for i in range(n):
            x[:, i] ^= t
        return self._pack(x)

    def decode(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        if indices.shape[0] == 0:
            return np.zeros((0, self.ndim), dtype=np.int64)
        x = self._unpack(indices)
        n, b = self.ndim, self.bits
        top = 2 << (b - 1)

        # Gray decode (TransposeToAxes).
        t = x[:, n - 1] >> 1
        for i in range(n - 1, 0, -1):
            x[:, i] ^= x[:, i - 1]
        x[:, 0] ^= t

        # Undo excess work.
        q = 2
        while q != top:
            p = q - 1
            for i in range(n - 1, -1, -1):
                hit = (x[:, i] & q) != 0
                x[:, 0] ^= np.where(hit, p, 0)
                t = np.where(hit, 0, (x[:, 0] ^ x[:, i]) & p)
                x[:, 0] ^= t
                x[:, i] ^= t
            q <<= 1
        return x
