"""Clustering statistics for curves (ablation A1).

Moon et al. (cited in §IV-A) analyze curve quality as the expected number
of contiguous index runs ("clusters") covering a query region: fewer runs
means fewer aggregate keys after coalescing, hence smaller intermediate
data.  These helpers measure that directly for our curve implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sfc.base import Curve

__all__ = ["box_range_count", "clustering_report", "CurveClusterStats"]


def _box_coords(corner: Sequence[int], shape: Sequence[int]) -> np.ndarray:
    """All integer coordinates inside the axis-aligned box, as (N, ndim)."""
    axes = [np.arange(c, c + s, dtype=np.int64) for c, s in zip(corner, shape)]
    grids = np.meshgrid(*axes, indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


def box_range_count(curve: Curve, corner: Sequence[int], shape: Sequence[int]) -> int:
    """Number of contiguous curve-index runs covering the box.

    This is exactly the number of aggregate keys key-aggregation would emit
    for a mapper whose output is this box (assuming no buffer flushes).
    """
    if len(corner) != curve.ndim or len(shape) != curve.ndim:
        raise ValueError(
            f"corner/shape must have {curve.ndim} entries, got {corner!r}/{shape!r}"
        )
    if any(s <= 0 for s in shape):
        raise ValueError(f"box shape must be positive, got {shape!r}")
    idx = np.sort(curve.encode(_box_coords(corner, shape)))
    if idx.size == 0:
        return 0
    # A new run starts wherever the gap to the predecessor exceeds 1.
    return int(1 + np.count_nonzero(np.diff(idx) > 1))


@dataclass(frozen=True)
class CurveClusterStats:
    """Aggregate clustering quality of one curve over a set of query boxes."""

    curve_name: str
    boxes: int
    mean_ranges: float
    max_ranges: int
    #: mean of (ranges / cells-in-box): 1/cells is perfect clustering
    mean_ranges_per_cell: float


def clustering_report(
    curves: Sequence[Curve],
    boxes: Sequence[tuple[Sequence[int], Sequence[int]]],
) -> list[CurveClusterStats]:
    """Measure range counts for each curve over each (corner, shape) box.

    Returns one row per curve, in input order, ready for the A1 bench to
    print.  Curves must share ndim and every box must fit inside every
    curve's side (sides may differ: base-3 curves cover the next power
    of three).
    """
    if not curves:
        return []
    ndim = curves[0].ndim
    for c in curves[1:]:
        if c.ndim != ndim:
            raise ValueError("all curves must share ndim")
    for corner, shape in boxes:
        for c in curves:
            hi = max(cc + ss for cc, ss in zip(corner, shape))
            if hi > c.side:
                raise ValueError(
                    f"box ({corner}, {shape}) exceeds curve {c.name} side {c.side}"
                )
    rows: list[CurveClusterStats] = []
    for curve in curves:
        counts = []
        per_cell = []
        for corner, shape in boxes:
            n_ranges = box_range_count(curve, corner, shape)
            counts.append(n_ranges)
            per_cell.append(n_ranges / float(np.prod(shape)))
        rows.append(
            CurveClusterStats(
                curve_name=curve.name,
                boxes=len(boxes),
                mean_ranges=float(np.mean(counts)),
                max_ranges=int(np.max(counts)),
                mean_ranges_per_cell=float(np.mean(per_cell)),
            )
        )
    return rows
