"""Space-filling curves (paper §IV).

Key aggregation reduces the n-dimensional grouping problem (Fig 5, which
the paper suspects is NP-hard) to one dimension by numbering cells along a
space-filling curve and collapsing contiguous index runs into ranges
(Fig 6).  The paper uses a Z-order curve "due to speed and ease of
implementation" and cites Moon et al. for the Hilbert curve's better
clustering; we implement both (plus row-major as the degenerate baseline)
behind one vectorized interface so the A1 ablation can compare them.
"""

from repro.sfc.base import Curve, get_curve, register_curve, available_curves
from repro.sfc.rowmajor import RowMajorCurve
from repro.sfc.zorder import ZOrderCurve
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.peano import PeanoCurve
from repro.sfc.stats import box_range_count, clustering_report

__all__ = [
    "Curve",
    "get_curve",
    "register_curve",
    "available_curves",
    "RowMajorCurve",
    "ZOrderCurve",
    "HilbertCurve",
    "PeanoCurve",
    "box_range_count",
    "clustering_report",
]
