"""Z-order (Morton) curve.

The paper's production choice (§IV-A): "Currently, a Z-order curve is used
due to speed and ease of implementation."  The index of a cell is formed by
interleaving the bits of its coordinates; dimension 0 contributes the least
significant bit of each group so that, for 2-D 4x4 grids, the numbering
matches the classic "N"-shaped pattern in the paper's Fig 6.

Encoding is vectorized: for each of ``bits`` bit positions we mask, shift
and OR whole coordinate columns, so cost is ``O(bits * ndim)`` numpy passes
independent of point count.
"""

from __future__ import annotations

import numpy as np

from repro.sfc.base import Curve, register_curve

__all__ = ["ZOrderCurve"]


@register_curve
class ZOrderCurve(Curve):
    """Morton-order bijection between ``ndim``-D coordinates and indices."""

    name = "zorder"

    def encode(self, coords: np.ndarray) -> np.ndarray:
        coords = self._check_coords(coords)
        out = np.zeros(coords.shape[0], dtype=np.int64)
        for bit in range(self.bits):
            for dim in range(self.ndim):
                # bit `bit` of coordinate `dim` lands at interleaved
                # position bit*ndim + dim.
                src = (coords[:, dim] >> bit) & 1
                out |= src << (bit * self.ndim + dim)
        return out

    def decode(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        coords = np.zeros((indices.shape[0], self.ndim), dtype=np.int64)
        for bit in range(self.bits):
            for dim in range(self.ndim):
                src = (indices >> (bit * self.ndim + dim)) & 1
                coords[:, dim] |= src << bit
        return coords
