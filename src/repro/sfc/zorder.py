"""Z-order (Morton) curve.

The paper's production choice (§IV-A): "Currently, a Z-order curve is used
due to speed and ease of implementation."  The index of a cell is formed by
interleaving the bits of its coordinates; dimension 0 contributes the least
significant bit of each group so that, for 2-D 4x4 grids, the numbering
matches the classic "N"-shaped pattern in the paper's Fig 6.

Encoding uses *magic-number bit spreading* (the binary-magic-numbers
technique behind the classic Part1By1/Part1By2 Morton helpers, generalized
to any ``ndim``): each coordinate column is spread -- its bits separated
by ``ndim - 1`` zeros -- with ``O(log bits)`` shift/or/mask passes, then
the spread columns are OR-ed together.  That replaces the previous
``O(bits * ndim)`` per-bit loop with ``O(ndim * log bits)`` numpy passes;
decoding runs the mirrored compaction.  A property test pins this
implementation against the straightforward per-bit reference.
"""

from __future__ import annotations

import numpy as np

from repro.sfc.base import Curve, register_curve

__all__ = ["ZOrderCurve"]


def _spread_masks(bits: int, ndim: int) -> list[tuple[int, int]]:
    """The ``(shift, mask)`` passes that spread one coordinate's bits.

    Spreading moves bit ``i`` of a ``bits``-wide value to position
    ``i * ndim`` by repeatedly halving chunks: a value whose set bits sit
    in chunks of ``2h`` placed every ``2h * ndim`` positions becomes one
    with chunks of ``h`` every ``h * ndim`` via
    ``x = (x | (x << h*(ndim-1))) & mask(h)``, where ``mask(h)`` keeps
    chunks of ``h`` bits spaced ``h * ndim`` apart.  Starting from the
    whole value (one chunk of ``2**K >= bits``) and iterating
    ``h = 2**(K-1) ... 1`` spreads completely in ``K`` passes.
    """
    if ndim == 1:
        return []

    def chunk_mask(h: int) -> int:
        mask = 0
        pos = 0
        while pos < bits * ndim:
            mask |= ((1 << h) - 1) << pos
            pos += h * ndim
        return mask

    k = 0
    while (1 << k) < bits:
        k += 1
    ops = []
    for h in (1 << p for p in range(k - 1, -1, -1)):
        ops.append((h * (ndim - 1), chunk_mask(h)))
    return ops


@register_curve
class ZOrderCurve(Curve):
    """Morton-order bijection between ``ndim``-D coordinates and indices."""

    name = "zorder"

    def __init__(self, ndim: int, bits: int) -> None:
        super().__init__(ndim, bits)
        self._ops = [
            (np.uint64(shift), np.uint64(mask))
            for shift, mask in _spread_masks(bits, ndim)
        ]

    def encode(self, coords: np.ndarray) -> np.ndarray:
        coords = self._check_coords(coords)
        out = np.zeros(coords.shape[0], dtype=np.uint64)
        for dim in range(self.ndim):
            spread = coords[:, dim].astype(np.uint64)
            for shift, mask in self._ops:
                spread = (spread | (spread << shift)) & mask
            out |= spread << np.uint64(dim)
        return out.astype(np.int64)

    def decode(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices).astype(np.uint64)
        coords = np.empty((indices.shape[0], self.ndim), dtype=np.int64)
        for dim in range(self.ndim):
            packed = indices >> np.uint64(dim)
            # Mirror of encode: mask down to the spread form, then merge
            # chunks back together, largest pass last.
            if self._ops:
                packed &= self._ops[-1][1]
                for i in range(len(self._ops) - 1, -1, -1):
                    shift = self._ops[i][0]
                    mask = (self._ops[i - 1][1] if i > 0
                            else np.uint64((1 << self.bits) - 1))
                    packed = (packed | (packed >> shift)) & mask
            else:
                packed &= np.uint64((1 << self.bits) - 1)
            coords[:, dim] = packed.astype(np.int64)
        return coords
